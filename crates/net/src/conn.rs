//! Sans-I/O connection state machine for the non-blocking serving path.
//!
//! A readiness-driven loop cannot use the blocking [`crate::read_frame`] /
//! [`crate::write_frame`] helpers: a socket may surface half a length
//! prefix now and the rest next tick, and a write may accept three bytes
//! of a frame before returning `WouldBlock`. This module owns exactly that
//! statefulness, with no I/O of its own:
//!
//! - [`FrameReader`] accumulates inbound bytes (fed by whoever did the
//!   `read`) and yields complete frames, enforcing the frame cap on the
//!   *announced* length before buffering a body;
//! - [`WriteQueue`] accumulates encoded outbound frames (enforcing the
//!   same cap symmetrically — an oversized payload is rejected at enqueue,
//!   never sent for the peer to drop) and flushes as many bytes as the
//!   socket will take, resuming mid-frame on the next readiness.
//!
//! Both sides are plain byte-buffer machines, so tests can drive them one
//! byte at a time — or at proptest-chosen split points — without a socket.

use std::io::{self, ErrorKind, Write};

use crate::frame::WireError;

/// Length of the frame header (a `u32` big-endian payload length).
const HEADER_LEN: usize = 4;

/// Consumed-prefix threshold above which [`FrameReader`] compacts its
/// buffer instead of letting the dead prefix grow without bound.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Reassembles length-prefixed frames from arbitrarily-split byte chunks.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Start of un-consumed bytes in `buf` (everything before it has
    /// already been handed out as frames).
    pos: usize,
    max: usize,
}

impl FrameReader {
    /// A reader enforcing `max` as the frame cap.
    pub fn new(max: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
            max,
        }
    }

    /// Appends bytes received from the socket.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Yields the next complete frame payload, `None` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] as soon as a header announces a length
    /// above the cap — before any of the body has to arrive. The reader is
    /// poisoned conceptually at that point; callers drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(end_of_header) = self.pos.checked_add(HEADER_LEN) else {
            return Ok(None);
        };
        let Some(header) = self.buf.get(self.pos..end_of_header) else {
            self.compact();
            return Ok(None);
        };
        let [h0, h1, h2, h3] = header else {
            // `get` above returned exactly HEADER_LEN bytes; this arm is
            // unreachable but keeps the proof panic-free.
            return Ok(None);
        };
        let len = u32::from_be_bytes([*h0, *h1, *h2, *h3]) as usize;
        if len > self.max {
            return Err(WireError::Oversized { len, max: self.max });
        }
        let Some(end_of_frame) = end_of_header.checked_add(len) else {
            return Ok(None);
        };
        let Some(payload) = self.buf.get(end_of_header..end_of_frame) else {
            self.compact();
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.pos = end_of_frame;
        self.compact();
        Ok(Some(payload))
    }

    /// Drops the consumed prefix when it dominates the buffer, keeping
    /// amortized cost linear.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// What [`WriteQueue::enqueue`] did with a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// The frame was queued (or partially queued bytes already were).
    Queued,
    /// The queue is over its backpressure cap; the frame was dropped.
    /// Remote slowness must surface as *silence*, exactly like a dead
    /// peer — the protocol already rides over silence.
    Dropped,
}

/// Coalescing outbound frame queue with partial-write resumption.
#[derive(Debug)]
pub struct WriteQueue {
    buf: Vec<u8>,
    /// Start of un-written bytes in `buf`.
    pos: usize,
    max_frame: usize,
    /// Backpressure bound on buffered bytes; frames past it are dropped.
    cap: usize,
    dropped: u64,
}

impl WriteQueue {
    /// A queue enforcing `max_frame` per frame and `cap` total buffered
    /// bytes (`cap` is raised to hold at least one maximum frame).
    pub fn new(max_frame: usize, cap: usize) -> WriteQueue {
        WriteQueue {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            cap: cap.max(max_frame.saturating_add(HEADER_LEN)),
            dropped: 0,
        }
    }

    /// Enqueues one frame (header + payload).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] for payloads above the frame cap — the
    /// mirror image of the read-side bound, enforced *before* any byte is
    /// emitted so a too-large frame can never reach a peer that would
    /// drop the connection over it.
    pub fn enqueue(&mut self, payload: &[u8]) -> Result<Enqueued, WireError> {
        if payload.len() > self.max_frame {
            return Err(WireError::Oversized {
                len: payload.len(),
                max: self.max_frame,
            });
        }
        // `max_frame` itself may exceed u32 range; the length prefix
        // cannot.
        let Ok(len) = u32::try_from(payload.len()) else {
            return Err(WireError::Oversized {
                len: payload.len(),
                max: u32::MAX as usize,
            });
        };
        if self.pending().saturating_add(HEADER_LEN + payload.len()) > self.cap {
            self.dropped = self.dropped.saturating_add(1);
            return Ok(Enqueued::Dropped);
        }
        self.buf.extend_from_slice(&len.to_be_bytes());
        self.buf.extend_from_slice(payload);
        Ok(Enqueued::Queued)
    }

    /// Bytes queued but not yet written.
    pub fn pending(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Frames dropped at the backpressure cap since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes as much as `w` will take without blocking.
    ///
    /// Returns the number of bytes written this call; `WouldBlock` stops
    /// the flush (the remainder stays queued for the next readiness) and
    /// is not an error. One logical frame may be split across many
    /// flushes.
    ///
    /// # Errors
    ///
    /// Real I/O errors (connection broken); the caller drops the
    /// connection.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut written = 0usize;
        while let Some(rest) = self.buf.get(self.pos..) {
            if rest.is_empty() {
                break;
            }
            match w.write(rest) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.pos = self.pos.saturating_add(n);
                    written = written.saturating_add(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `budget` bytes per `write` call and
    /// returns `WouldBlock` after `limit` total bytes until `limit` is
    /// raised — the shape of a slow socket.
    struct Throttled {
        taken: Vec<u8>,
        budget: usize,
        limit: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.taken.len() >= self.limit {
                return Err(ErrorKind::WouldBlock.into());
            }
            let room = (self.limit - self.taken.len())
                .min(self.budget)
                .min(buf.len());
            self.taken.extend_from_slice(&buf[..room]);
            Ok(room)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let frames: Vec<&[u8]> = vec![b"", b"x", b"hello frame", &[0u8; 300]];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&frame_bytes(f));
        }
        let mut r = FrameReader::new(1024);
        let mut out = Vec::new();
        for byte in wire {
            r.ingest(&[byte]);
            while let Some(f) = r.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out.len(), frames.len());
        for (got, want) in out.iter().zip(frames.iter()) {
            assert_eq!(got.as_slice(), *want);
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn incomplete_header_and_body_yield_none() {
        let mut r = FrameReader::new(1024);
        assert!(r.next_frame().unwrap().is_none());
        r.ingest(&[0, 0]); // half a header
        assert!(r.next_frame().unwrap().is_none());
        r.ingest(&[0, 3]); // header complete: 3-byte body
        assert!(r.next_frame().unwrap().is_none());
        r.ingest(b"ab"); // 2 of 3 body bytes
        assert!(r.next_frame().unwrap().is_none());
        r.ingest(b"c");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"abc");
    }

    #[test]
    fn oversized_announced_length_rejected_before_body() {
        let mut r = FrameReader::new(16);
        r.ingest(&17u32.to_be_bytes());
        match r.next_frame().unwrap_err() {
            WireError::Oversized { len, max } => {
                assert_eq!((len, max), (17, 16));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn compaction_keeps_frames_intact() {
        // Push enough traffic through to cross the compaction threshold
        // several times, interleaved with partial deliveries.
        let payload = vec![7u8; 9000];
        let wire = frame_bytes(&payload);
        let mut r = FrameReader::new(16 * 1024);
        for round in 0..40 {
            // Deliver in two uneven chunks.
            let split = (round * 997) % wire.len();
            r.ingest(&wire[..split]);
            assert!(r.next_frame().unwrap().is_none() || split == 0);
            r.ingest(&wire[split..]);
            assert_eq!(r.next_frame().unwrap().unwrap(), payload);
        }
    }

    #[test]
    fn write_queue_rejects_oversized_symmetrically() {
        let mut q = WriteQueue::new(8, 1024);
        match q.enqueue(&[0u8; 9]).unwrap_err() {
            WireError::Oversized { len, max } => assert_eq!((len, max), (9, 8)),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(
            q.pending(),
            0,
            "nothing may be emitted for a rejected frame"
        );
    }

    #[test]
    fn write_queue_drops_at_backpressure_cap() {
        let mut q = WriteQueue::new(64, 64 + 4);
        assert_eq!(q.enqueue(&[1u8; 64]).unwrap(), Enqueued::Queued);
        assert_eq!(q.enqueue(&[2u8; 64]).unwrap(), Enqueued::Dropped);
        assert_eq!(q.dropped(), 1);
        // The queued frame is still intact.
        let mut sink = Throttled {
            taken: Vec::new(),
            budget: usize::MAX,
            limit: usize::MAX,
        };
        q.flush_to(&mut sink).unwrap();
        assert_eq!(sink.taken, frame_bytes(&[1u8; 64]));
    }

    #[test]
    fn partial_writes_resume_mid_frame() {
        let mut q = WriteQueue::new(1024, 4096);
        q.enqueue(b"first frame").unwrap();
        q.enqueue(b"second").unwrap();
        let mut sink = Throttled {
            taken: Vec::new(),
            budget: 3, // at most 3 bytes per syscall
            limit: 7,  // then WouldBlock until raised
        };
        let n = q.flush_to(&mut sink).unwrap();
        assert_eq!(n, 7);
        assert!(q.pending() > 0);
        // Socket becomes writable again.
        sink.limit = usize::MAX;
        q.flush_to(&mut sink).unwrap();
        assert_eq!(q.pending(), 0);
        let mut expect = frame_bytes(b"first frame");
        expect.extend_from_slice(&frame_bytes(b"second"));
        assert_eq!(sink.taken, expect);
        // And the byte stream reassembles into the original frames.
        let mut r = FrameReader::new(1024);
        r.ingest(&sink.taken);
        assert_eq!(r.next_frame().unwrap().unwrap(), b"first frame");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"second");
    }
}
