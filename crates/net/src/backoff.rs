//! Jittered bounded exponential backoff for redials.
//!
//! Both meshes (server↔server gossip links and the pipelined client's
//! server links) redial failed connections on a doubling schedule capped
//! at a maximum. Without jitter, a partition that cuts many links at once
//! makes every survivor redial in lockstep — the thundering herd arrives
//! exactly when the partition heals and the schedule keeps the herd
//! synchronized forever. Drawing each delay uniformly from
//! `[base/2, base]` ("equal jitter") keeps the bounded-backoff guarantee
//! (never sooner than half the deterministic schedule, never later than
//! the cap) while decorrelating the fleet.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;

/// Per-target redial schedule: a doubling base delay capped at `max`,
/// with equal jitter applied to every draw.
#[derive(Debug, Clone)]
pub struct Backoff {
    min: Duration,
    max: Duration,
    /// Current (un-jittered) base delay; `None` until the first failure.
    base: Option<Duration>,
}

impl Backoff {
    /// A fresh schedule: the first failure waits ~`min`, each consecutive
    /// failure doubles the base up to `max`.
    pub fn new(min: Duration, max: Duration) -> Backoff {
        Backoff {
            min,
            max: max.max(min),
            base: None,
        }
    }

    /// Records a failure and returns the jittered delay before the next
    /// attempt: uniform in `[base/2, base]`, where `base` doubles per
    /// consecutive failure (capped at the schedule maximum).
    pub fn next_delay(&mut self, rng: &mut StdRng) -> Duration {
        let base = match self.base {
            None => self.min,
            Some(b) => (b.saturating_mul(2)).min(self.max),
        };
        self.base = Some(base);
        jittered(base, rng)
    }

    /// The current un-jittered base delay (`None` before any failure).
    pub fn base(&self) -> Option<Duration> {
        self.base
    }

    /// Forgets past failures; the next delay starts from `min` again.
    pub fn reset(&mut self) {
        self.base = None;
    }
}

/// Equal jitter: a uniform draw from `[base/2, base]`.
pub fn jittered(base: Duration, rng: &mut StdRng) -> Duration {
    let us = u64::try_from(base.as_micros()).unwrap_or(u64::MAX);
    if us == 0 {
        return Duration::ZERO;
    }
    let half = us / 2;
    Duration::from_micros(rng.gen_range(half..=us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const MIN: Duration = Duration::from_millis(100);
    const MAX: Duration = Duration::from_secs(2);

    /// The deterministic (un-jittered) schedule under test: doubling from
    /// `MIN`, saturating at `MAX`.
    fn expected_base(failures: u32) -> Duration {
        let mut base = MIN;
        for _ in 1..failures {
            base = (base * 2).min(MAX);
        }
        base
    }

    #[test]
    fn schedule_doubles_and_caps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Backoff::new(MIN, MAX);
        for failures in 1..=10u32 {
            let d = b.next_delay(&mut rng);
            let base = expected_base(failures);
            assert_eq!(b.base(), Some(base), "base after {failures} failures");
            // The jittered draw must stay inside [base/2, base]: never
            // sooner than half the deterministic schedule, never later
            // than the un-jittered delay (which itself is capped).
            assert!(d >= base / 2, "delay {d:?} below jitter floor of {base:?}");
            assert!(d <= base, "delay {d:?} above base {base:?}");
        }
        assert_eq!(b.base(), Some(MAX), "schedule must cap at max");
    }

    #[test]
    fn reset_restarts_from_min() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = Backoff::new(MIN, MAX);
        for _ in 0..6 {
            b.next_delay(&mut rng);
        }
        b.reset();
        assert_eq!(b.base(), None);
        let d = b.next_delay(&mut rng);
        assert_eq!(b.base(), Some(MIN));
        assert!(d >= MIN / 2 && d <= MIN);
    }

    #[test]
    fn jitter_actually_varies() {
        // Two fleets with different seeds must not redial in lockstep:
        // across a few rounds at the cap, at least one draw must differ.
        let mut a = StdRng::seed_from_u64(1);
        let mut z = StdRng::seed_from_u64(2);
        let mut ba = Backoff::new(MIN, MAX);
        let mut bz = Backoff::new(MIN, MAX);
        let delays_a: Vec<Duration> = (0..8).map(|_| ba.next_delay(&mut a)).collect();
        let delays_z: Vec<Duration> = (0..8).map(|_| bz.next_delay(&mut z)).collect();
        assert_ne!(delays_a, delays_z, "jitter must decorrelate schedules");
    }

    #[test]
    fn zero_base_is_safe() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(jittered(Duration::ZERO, &mut rng), Duration::ZERO);
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert_eq!(b.next_delay(&mut rng), Duration::ZERO);
    }

    #[test]
    fn degenerate_max_below_min_is_clamped() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut b = Backoff::new(MAX, MIN);
        let d = b.next_delay(&mut rng);
        // max is lifted to min, so the schedule is flat at MAX.
        assert!(d <= MAX && d >= MAX / 2);
        b.next_delay(&mut rng);
        assert_eq!(b.base(), Some(MAX));
    }
}
