//! Jittered bounded exponential backoff for redials.
//!
//! Both meshes (server↔server gossip links and the pipelined client's
//! server links) redial failed connections on a doubling schedule capped
//! at a maximum. Without jitter, a partition that cuts many links at once
//! makes every survivor redial in lockstep — the thundering herd arrives
//! exactly when the partition heals and the schedule keeps the herd
//! synchronized forever. Drawing each delay uniformly from
//! `[base/2, base]` ("equal jitter") keeps the bounded-backoff guarantee
//! (never sooner than half the deterministic schedule, never later than
//! the cap) while decorrelating the fleet.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;

/// Per-target redial schedule: a doubling base delay capped at `max`,
/// with equal jitter applied to every draw.
#[derive(Debug, Clone)]
pub struct Backoff {
    min: Duration,
    max: Duration,
    /// Current (un-jittered) base delay; `None` until the first failure.
    base: Option<Duration>,
}

impl Backoff {
    /// A fresh schedule: the first failure waits ~`min`, each consecutive
    /// failure doubles the base up to `max`.
    pub fn new(min: Duration, max: Duration) -> Backoff {
        Backoff {
            min,
            max: max.max(min),
            base: None,
        }
    }

    /// Records a failure and returns the jittered delay before the next
    /// attempt: uniform in `[base/2, base]`, where `base` doubles per
    /// consecutive failure (capped at the schedule maximum).
    pub fn next_delay(&mut self, rng: &mut StdRng) -> Duration {
        let base = match self.base {
            None => self.min,
            Some(b) => (b.saturating_mul(2)).min(self.max),
        };
        self.base = Some(base);
        jittered(base, rng)
    }

    /// The current un-jittered base delay (`None` before any failure).
    pub fn base(&self) -> Option<Duration> {
        self.base
    }

    /// Forgets past failures; the next delay starts from `min` again.
    pub fn reset(&mut self) {
        self.base = None;
    }
}

/// Equal jitter: a uniform draw from `[base/2, base]`.
pub fn jittered(base: Duration, rng: &mut StdRng) -> Duration {
    let us = u64::try_from(base.as_micros()).unwrap_or(u64::MAX);
    if us == 0 {
        return Duration::ZERO;
    }
    let half = us / 2;
    Duration::from_micros(rng.gen_range(half..=us))
}

/// Decorrelated jitter: a uniform draw from `[base, prev * 3]`, capped at
/// `cap` and floored at `base`.
///
/// Unlike equal jitter over a doubling schedule — where every client's
/// delay still clusters around the same deterministic base — each draw
/// here feeds the next one, so two clients that fail at the same instant
/// random-walk apart instead of re-colliding every round. This is the
/// schedule the wire-chaos campaigns exercise: mass resets with many
/// clients redialing the same few servers.
pub fn decorrelated_jitter(
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: &mut StdRng,
) -> Duration {
    let base_us = u64::try_from(base.as_micros()).unwrap_or(u64::MAX);
    if base_us == 0 {
        return Duration::ZERO;
    }
    let cap_us = u64::try_from(cap.as_micros())
        .unwrap_or(u64::MAX)
        .max(base_us);
    let prev_us = u64::try_from(prev.as_micros()).unwrap_or(u64::MAX);
    let hi = prev_us.saturating_mul(3).clamp(base_us, cap_us);
    Duration::from_micros(rng.gen_range(base_us..=hi))
}

/// Consecutive faults before [`LinkHealth::quarantined`] reports true.
const QUARANTINE_FAULTS: u32 = 3;

/// Health score for one client→server link: counts consecutive faults
/// (failed dials and short-lived connections) and paces redials with
/// [`decorrelated_jitter`].
///
/// The score is what turns "the connection dropped" into a *selection*
/// signal: a flapping link — one that accepts the dial, then dies before
/// `healthy_after` of uptime — keeps its fault streak across the
/// reconnect, so its redial delay keeps growing where a naive
/// reset-on-connect schedule would hammer it forever. While the link sits
/// out its delay it stays down, requests to it fall into the protocol's
/// silence path, and the quorum machinery widens to other servers — the
/// quarantine *is* the health-scored selection, applied at the transport
/// where the flapping is observed.
#[derive(Debug, Clone)]
pub struct LinkHealth {
    min: Duration,
    max: Duration,
    /// Uptime after which a connection counts as healthy and the fault
    /// streak resets.
    healthy_after: Duration,
    /// Consecutive faults: failed dials plus sub-`healthy_after` drops.
    faults: u32,
    /// Previous delay; feeds the decorrelated-jitter recurrence.
    prev: Duration,
    /// When the current connection came up, while one is up.
    up_since: Option<Instant>,
}

impl LinkHealth {
    /// A fresh healthy link: redial delays drawn from
    /// `decorrelated_jitter(min, max, ·)`, fault streaks forgiven after
    /// `healthy_after` of continuous uptime.
    pub fn new(min: Duration, max: Duration, healthy_after: Duration) -> LinkHealth {
        LinkHealth {
            min,
            max: max.max(min),
            healthy_after,
            faults: 0,
            prev: Duration::ZERO,
            up_since: None,
        }
    }

    /// Records a successful dial. The fault streak is *not* reset here —
    /// only surviving `healthy_after` of uptime (observed at the next
    /// [`LinkHealth::on_drop`]) clears it, so accept-then-die flapping
    /// cannot launder its history through the accept.
    pub fn on_connect(&mut self, now: Instant) {
        self.up_since = Some(now);
    }

    /// Records a failed dial; returns the delay before the next attempt.
    pub fn on_dial_failure(&mut self, rng: &mut StdRng) -> Duration {
        self.up_since = None;
        self.faults = self.faults.saturating_add(1);
        self.prev = decorrelated_jitter(self.min, self.max, self.prev, rng);
        self.prev
    }

    /// Records a dropped connection; returns the delay before redialing.
    /// A drop after `healthy_after` of uptime forgives the streak first
    /// (a long-lived link that died redials promptly); a shorter-lived
    /// connection extends it (a flapping link keeps backing off).
    pub fn on_drop(&mut self, now: Instant, rng: &mut StdRng) -> Duration {
        let healthy = self
            .up_since
            .take()
            .is_some_and(|up| now.saturating_duration_since(up) >= self.healthy_after);
        if healthy {
            self.faults = 0;
            self.prev = Duration::ZERO;
        }
        self.faults = self.faults.saturating_add(1);
        self.prev = decorrelated_jitter(self.min, self.max, self.prev, rng);
        self.prev
    }

    /// Consecutive faults since the last healthy stretch.
    pub fn faults(&self) -> u32 {
        self.faults
    }

    /// Whether the link is currently considered flapping (fault streak at
    /// or past the quarantine threshold). Observability only — pacing is
    /// already built into the returned delays.
    pub fn quarantined(&self) -> bool {
        self.faults >= QUARANTINE_FAULTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const MIN: Duration = Duration::from_millis(100);
    const MAX: Duration = Duration::from_secs(2);

    /// The deterministic (un-jittered) schedule under test: doubling from
    /// `MIN`, saturating at `MAX`.
    fn expected_base(failures: u32) -> Duration {
        let mut base = MIN;
        for _ in 1..failures {
            base = (base * 2).min(MAX);
        }
        base
    }

    #[test]
    fn schedule_doubles_and_caps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Backoff::new(MIN, MAX);
        for failures in 1..=10u32 {
            let d = b.next_delay(&mut rng);
            let base = expected_base(failures);
            assert_eq!(b.base(), Some(base), "base after {failures} failures");
            // The jittered draw must stay inside [base/2, base]: never
            // sooner than half the deterministic schedule, never later
            // than the un-jittered delay (which itself is capped).
            assert!(d >= base / 2, "delay {d:?} below jitter floor of {base:?}");
            assert!(d <= base, "delay {d:?} above base {base:?}");
        }
        assert_eq!(b.base(), Some(MAX), "schedule must cap at max");
    }

    #[test]
    fn reset_restarts_from_min() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = Backoff::new(MIN, MAX);
        for _ in 0..6 {
            b.next_delay(&mut rng);
        }
        b.reset();
        assert_eq!(b.base(), None);
        let d = b.next_delay(&mut rng);
        assert_eq!(b.base(), Some(MIN));
        assert!(d >= MIN / 2 && d <= MIN);
    }

    #[test]
    fn jitter_actually_varies() {
        // Two fleets with different seeds must not redial in lockstep:
        // across a few rounds at the cap, at least one draw must differ.
        let mut a = StdRng::seed_from_u64(1);
        let mut z = StdRng::seed_from_u64(2);
        let mut ba = Backoff::new(MIN, MAX);
        let mut bz = Backoff::new(MIN, MAX);
        let delays_a: Vec<Duration> = (0..8).map(|_| ba.next_delay(&mut a)).collect();
        let delays_z: Vec<Duration> = (0..8).map(|_| bz.next_delay(&mut z)).collect();
        assert_ne!(delays_a, delays_z, "jitter must decorrelate schedules");
    }

    #[test]
    fn zero_base_is_safe() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(jittered(Duration::ZERO, &mut rng), Duration::ZERO);
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert_eq!(b.next_delay(&mut rng), Duration::ZERO);
    }

    #[test]
    fn decorrelated_jitter_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut prev = Duration::ZERO;
        for _ in 0..64 {
            prev = decorrelated_jitter(MIN, MAX, prev, &mut rng);
            assert!(prev >= MIN, "delay {prev:?} below base {MIN:?}");
            assert!(prev <= MAX, "delay {prev:?} above cap {MAX:?}");
        }
        assert_eq!(
            decorrelated_jitter(Duration::ZERO, MAX, prev, &mut rng),
            Duration::ZERO,
            "zero base must stay zero"
        );
    }

    #[test]
    fn decorrelated_jitter_decorrelates_fleets() {
        let mut a = StdRng::seed_from_u64(21);
        let mut z = StdRng::seed_from_u64(22);
        let (mut pa, mut pz) = (Duration::ZERO, Duration::ZERO);
        let da: Vec<Duration> = (0..8)
            .map(|_| {
                pa = decorrelated_jitter(MIN, MAX, pa, &mut a);
                pa
            })
            .collect();
        let dz: Vec<Duration> = (0..8)
            .map(|_| {
                pz = decorrelated_jitter(MIN, MAX, pz, &mut z);
                pz
            })
            .collect();
        assert_ne!(da, dz, "two fleets must not redial in lockstep");
    }

    #[test]
    fn flapping_link_quarantines_and_backs_off() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut h = LinkHealth::new(MIN, MAX, Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(!h.quarantined());
        // Accept-then-die, three times in a row: the streak must survive
        // each successful dial and the delays must never shrink back to
        // the first-failure range's floor.
        let mut delays = Vec::new();
        for _ in 0..3 {
            h.on_connect(t0);
            delays.push(h.on_drop(t0, &mut rng)); // dies instantly
        }
        assert_eq!(h.faults(), 3, "accepts must not launder the streak");
        assert!(h.quarantined(), "three straight faults quarantine");
        assert!(
            delays.iter().all(|d| *d >= MIN),
            "every delay at least the base"
        );
    }

    #[test]
    fn healthy_uptime_forgives_the_streak() {
        let mut rng = StdRng::seed_from_u64(32);
        let healthy_after = Duration::from_millis(10);
        let mut h = LinkHealth::new(MIN, MAX, healthy_after);
        let t0 = Instant::now();
        for _ in 0..4 {
            h.on_dial_failure(&mut rng);
        }
        assert!(h.quarantined());
        // A connection that survives past `healthy_after` resets the
        // streak when it finally drops: one fault, prompt redial.
        h.on_connect(t0);
        let d = h.on_drop(t0 + healthy_after * 2, &mut rng);
        assert_eq!(h.faults(), 1, "healthy stretch forgives past faults");
        assert!(!h.quarantined());
        assert!(d <= MIN * 3, "post-healthy redial starts near the base");
    }

    #[test]
    fn degenerate_max_below_min_is_clamped() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut b = Backoff::new(MAX, MIN);
        let d = b.next_delay(&mut rng);
        // max is lifted to min, so the schedule is flat at MAX.
        assert!(d <= MAX && d >= MAX / 2);
        b.next_delay(&mut rng);
        assert_eq!(b.base(), Some(MAX));
    }
}
