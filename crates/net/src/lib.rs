//! Real TCP deployment path for the secure store.
//!
//! The repository's protocol logic lives in sans-I/O state machines
//! (`sstore-core`'s `ClientCore` / `ServerNode`); this crate is the third
//! and outermost shell around them:
//!
//! 1. **deterministic simulator** (`sstore-simnet`) — protocol validation
//!    with seeded faults;
//! 2. **threaded in-process transport** (`sstore-transport`) — real time,
//!    real concurrency, in-memory channels;
//! 3. **`sstore-net`** (this crate) — real sockets: a canonical binary
//!    codec (`sstore_core::codec`) under length-prefixed framing, the
//!    [`NetServer`] daemon (also packaged as the `sstore-server` binary,
//!    one repository server per process; [`ServingMode`] selects the
//!    default non-blocking event loop or the legacy
//!    thread-per-connection path), the blocking [`NetClient`] with
//!    per-request deadlines and bounded-backoff reconnect, and the
//!    pipelining [`PipeClient`] that multiplexes many in-flight
//!    operations over one connection set.
//!
//! The byte-for-byte identical state machines are the point: behavior
//! validated in the simulator is the behavior deployed on the wire. The
//! failure model also carries over — a crashed or unreachable server is
//! *silence*, never an error, so client quorum logic degrades gracefully
//! with up to `b` servers gone (paper §3.4).
//!
//! Applications use [`StoreHandle`] to stay generic over deployment path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod client;
mod coalesce;
mod conn;
mod event_loop;
mod frame;
mod pipeline;
mod server;
pub mod wirechaos;

pub use backoff::{decorrelated_jitter, jittered, Backoff, LinkHealth};
pub use client::{NetClient, NetClientConfig, NetCluster};
pub use coalesce::{frames_from, Coalescer};
pub use conn::{Enqueued, FrameReader, WriteQueue};
pub use frame::{
    decode_hello, encode_hello, read_frame, write_frame, WireError, DEFAULT_MAX_FRAME,
};
pub use pipeline::PipeClient;
pub use server::{NetServer, NetServerConfig, ServingMode};
pub use sstore_transport::{StoreError, StoreHandle};
