//! The non-blocking serving path: one readiness-driven event loop.
//!
//! Instead of three threads per connection (reader, writer, plus the
//! accepted socket's stack), a single loop thread owns every socket in
//! non-blocking mode and round-robins readiness:
//!
//! 1. accept new connections;
//! 2. register finished outbound dials (peer dials run on short-lived
//!    helper threads because `std` offers no non-blocking `connect`, and
//!    a slow dial must not stall the loop);
//! 3. read every readable socket, reassemble frames with
//!    [`FrameReader`], and dispatch complete messages through
//!    [`ServerNode::handle`] — pipelining falls out naturally, since
//!    every frame on a connection is processed as it completes without
//!    waiting for earlier responses to be written;
//! 4. fire the gossip timer when due, *enqueueing* the whole fan-out;
//! 5. flush every connection's [`WriteQueue`] — one coalesced `write`
//!    per readable batch and gossip round instead of a
//!    write+write+flush syscall triple per message;
//! 6. sleep briefly only when nothing progressed.
//!
//! The protocol state machine stays behind the same mutex as in the
//! thread-per-connection path (both paths serialize `handle` calls), so
//! the event loop's win is mechanical: no per-connection threads to
//! stack-allocate and context-switch, and batched writes. Slow or dead
//! peers surface as *silence*: a full write queue drops frames and an
//! unreachable peer just never gets a connection, exactly the failure
//! model the quorum protocols assume.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_core::codec::decode_frame_msgs;
use sstore_core::metrics::WireStats;
use sstore_core::server::{Addr, ServerNode};
use sstore_core::types::ServerId;
use sstore_core::wire::Msg;
use sstore_simnet::SimTime;

use crate::backoff::Backoff;
use crate::coalesce::Coalescer;
use crate::conn::{FrameReader, WriteQueue};
use crate::frame::{decode_hello, encode_hello};
use crate::server::{locked, NetServerConfig};

/// Read budget per connection per loop tick: bounds how long one chatty
/// connection can monopolize the loop before its neighbours get a turn.
const READ_BUDGET: usize = 8;

/// Scratch read-buffer size.
const SCRATCH: usize = 64 * 1024;

/// Cap on messages buffered for a peer whose dial is still in flight.
const DIAL_QUEUE_CAP: usize = 1024;

/// Per-connection write-queue cap, as a multiple of the frame cap.
const OUT_CAP_FRAMES: usize = 4;

/// Write-queue high-water mark, as a multiple of the frame cap: once a
/// client connection's queue holds this much, further requests from it
/// are answered with [`Msg::Shed`] instead of being processed — explicit
/// overload, distinguishable from Byzantine silence, cheap enough (one
/// header-sized reply) to send from an overloaded server.
const SHED_HIGH_WATER_FRAMES: usize = 2;

/// State shared between the loop thread and the [`crate::NetServer`]
/// handle.
pub(crate) struct EventShared {
    pub(crate) me: ServerId,
    pub(crate) node: Mutex<ServerNode>,
    pub(crate) stats: Mutex<WireStats>,
    pub(crate) shutdown: AtomicBool,
    /// Requests refused with an explicit [`Msg::Shed`] reply.
    pub(crate) sheds: AtomicU64,
    /// Frames dropped at write-queue backpressure caps (live + closed
    /// connections; refreshed by the loop each flush).
    pub(crate) drops: AtomicU64,
    start: Instant,
}

impl EventShared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

/// Handle on a running event loop.
pub(crate) struct EventHandle {
    pub(crate) shared: Arc<EventShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl EventHandle {
    /// Signals the loop to stop and joins it; every socket closes when
    /// the loop's state drops.
    pub(crate) fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let handle = locked(&self.thread).take();
        if let Some(h) = handle {
            // lint:allow(L7): runs on the caller's thread tearing the loop
            // down, never on the loop itself — the loop cannot join itself.
            let _ = h.join();
        }
    }
}

/// Starts the event loop serving `node` on `listener`.
pub(crate) fn start(
    node: ServerNode,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    cfg: NetServerConfig,
) -> io::Result<EventHandle> {
    listener.set_nonblocking(true)?;
    let me = node.id();
    let gossip_period = Duration::from_micros(node.gossip_period().as_micros().max(1));
    let shared = Arc::new(EventShared {
        me,
        node: Mutex::new(node),
        stats: Mutex::new(WireStats::new()),
        shutdown: AtomicBool::new(false),
        sheds: AtomicU64::new(0),
        drops: AtomicU64::new(0),
        start: Instant::now(),
    });
    let loop_shared = shared.clone();
    let thread = std::thread::spawn(move || run(loop_shared, listener, peers, cfg, gossip_period));
    Ok(EventHandle {
        shared,
        thread: Mutex::new(Some(thread)),
    })
}

/// One live connection owned by the loop.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    out: WriteQueue,
    /// Messages staged this tick, packed into coalesced multi-message
    /// frames at flush time.
    staged: Coalescer,
    /// Routing identity; `None` until the inbound hello arrives
    /// (outbound peer links know it at dial time).
    addr: Option<Addr>,
}

impl Conn {
    fn new(stream: TcpStream, cfg: &NetServerConfig) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(cfg.max_frame),
            out: WriteQueue::new(cfg.max_frame, cfg.max_frame.saturating_mul(OUT_CAP_FRAMES)),
            staged: Coalescer::new(),
            addr: None,
        }
    }
}

/// Redial state for one peer server.
struct PeerDial {
    backoff: Backoff,
    next_attempt: Instant,
    /// A helper thread is currently dialing; don't start another.
    inflight: bool,
    /// Messages awaiting the connection (bounded; overflow is silence).
    queued: Vec<Msg>,
}

enum DialResult {
    Up(ServerId, TcpStream),
    Down(ServerId),
}

/// Everything the loop owns; split out so helpers can borrow it whole.
struct Loop {
    shared: Arc<EventShared>,
    cfg: NetServerConfig,
    peers: Vec<SocketAddr>,
    conns: Vec<Option<Conn>>,
    routes: HashMap<Addr, usize>,
    dials: HashMap<ServerId, PeerDial>,
    dial_tx: mpsc::Sender<DialResult>,
    rng: StdRng,
    /// Backpressure drops carried over from closed connections.
    drops_retired: u64,
}

impl Loop {
    /// Stores `conn` in the first free slot and returns its index.
    fn insert(&mut self, conn: Conn) -> usize {
        for (i, slot) in self.conns.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(conn);
                return i;
            }
        }
        self.conns.push(Some(conn));
        self.conns.len().saturating_sub(1)
    }

    /// Closes connection `idx`, dropping its route if it still owns it.
    fn close(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        self.drops_retired = self.drops_retired.saturating_add(conn.out.dropped());
        if let Some(addr) = conn.addr {
            if self.routes.get(&addr) == Some(&idx) {
                self.routes.remove(&addr);
            }
        }
        // Dropping `conn` closes the socket.
    }

    /// Stages one message on connection `idx`; the flush phase packs the
    /// tick's staged messages into coalesced frames. Frames the write
    /// queue cannot take are dropped — backpressure surfaces as silence.
    fn enqueue(&mut self, idx: usize, msg: Msg) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        conn.staged.stage(msg);
    }

    /// Routes one state-machine output: direct to a live connection,
    /// else (for peer servers) onto the dial queue; vanished clients are
    /// silence.
    fn route(&mut self, to: Addr, msg: Msg) {
        if let Some(&idx) = self.routes.get(&to) {
            self.enqueue(idx, msg);
            return;
        }
        let Addr::Server(peer) = to else {
            return; // client went away; nothing to do
        };
        if peer == self.shared.me {
            return;
        }
        let Some(&addr) = self.peers.get(usize::from(peer.0)) else {
            return;
        };
        let dial = self.dials.entry(peer).or_insert_with(|| PeerDial {
            backoff: Backoff::new(self.cfg.backoff_min, self.cfg.backoff_max),
            next_attempt: Instant::now(),
            inflight: false,
            queued: Vec::new(),
        });
        if dial.queued.len() < DIAL_QUEUE_CAP {
            dial.queued.push(msg);
        }
        if !dial.inflight && Instant::now() >= dial.next_attempt {
            dial.inflight = true;
            let tx = self.dial_tx.clone();
            let timeout = self.cfg.connect_timeout;
            std::thread::spawn(move || {
                let result = match TcpStream::connect_timeout(&addr, timeout) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        DialResult::Up(peer, stream)
                    }
                    Err(_) => DialResult::Down(peer),
                };
                let _ = tx.send(result);
            });
        }
    }

    /// Registers a finished outbound dial.
    fn dial_done(&mut self, result: DialResult) {
        match result {
            DialResult::Up(peer, stream) => {
                if stream.set_nonblocking(true).is_err() {
                    self.dial_done(DialResult::Down(peer));
                    return;
                }
                let mut conn = Conn::new(stream, &self.cfg);
                conn.addr = Some(Addr::Server(peer));
                if conn
                    .out
                    .enqueue(&encode_hello(Addr::Server(self.shared.me)))
                    .is_err()
                {
                    return;
                }
                let idx = self.insert(conn);
                self.routes.insert(Addr::Server(peer), idx);
                let queued = match self.dials.get_mut(&peer) {
                    Some(dial) => {
                        dial.inflight = false;
                        dial.backoff.reset();
                        std::mem::take(&mut dial.queued)
                    }
                    None => Vec::new(),
                };
                for msg in queued {
                    self.enqueue(idx, msg);
                }
            }
            DialResult::Down(peer) => {
                if let Some(dial) = self.dials.get_mut(&peer) {
                    dial.inflight = false;
                    dial.queued.clear(); // unreachable peer: silence
                    let delay = dial.backoff.next_delay(&mut self.rng);
                    dial.next_attempt = Instant::now() + delay;
                }
            }
        }
    }

    /// Drains readable bytes from connection `idx`, dispatching every
    /// complete frame through the state machine. Returns whether any
    /// byte arrived.
    fn read_conn(&mut self, idx: usize, scratch: &mut [u8]) -> bool {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return false;
        };
        let mut outs: Vec<(Addr, Msg)> = Vec::new();
        let mut progressed = false;
        let mut alive = true;
        let mut budget = READ_BUDGET;
        'read: while budget > 0 {
            budget -= 1;
            match conn.stream.read(scratch) {
                Ok(0) => {
                    alive = false;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    let Some(bytes) = scratch.get(..n) else {
                        alive = false;
                        break;
                    };
                    conn.reader.ingest(bytes);
                    loop {
                        match conn.reader.next_frame() {
                            Ok(Some(frame)) => {
                                if !self.dispatch(&mut conn, idx, &frame, &mut outs) {
                                    alive = false;
                                    break 'read;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Oversized announcement: protocol
                                // violation, drop the connection.
                                alive = false;
                                break 'read;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    alive = false;
                    break;
                }
            }
        }
        if let Some(slot) = self.conns.get_mut(idx) {
            *slot = Some(conn);
        }
        if !alive {
            self.close(idx);
        }
        // Route only after the connection is back in (or out of) the
        // slab, so replies to the sender itself find it by route.
        for (to, msg) in outs {
            self.route(to, msg);
        }
        progressed
    }

    /// Handles one complete frame on `conn`: the first must be a hello,
    /// the rest are protocol messages — possibly several per frame, when
    /// the peer coalesced. Returns `false` on a protocol violation
    /// (caller drops the connection).
    fn dispatch(
        &mut self,
        conn: &mut Conn,
        idx: usize,
        frame: &[u8],
        outs: &mut Vec<(Addr, Msg)>,
    ) -> bool {
        match conn.addr {
            None => match decode_hello(frame) {
                Ok(addr) => {
                    conn.addr = Some(addr);
                    // Last hello wins, like the threaded path's link
                    // registry: a reconnecting party replaces its route.
                    self.routes.insert(addr, idx);
                    true
                }
                Err(_) => false,
            },
            Some(from) => match decode_frame_msgs(frame) {
                Ok(msgs) => {
                    let now = self.shared.now();
                    // Overload check *before* handling: once this client
                    // connection's write queue crosses the high-water
                    // mark, processing more of its requests only deepens
                    // the backlog (and the replies would be dropped at
                    // the cap anyway — Byzantine silence from the
                    // client's view). An explicit shed is attributable:
                    // the client escalates to another server at once.
                    let overloaded = matches!(from, Addr::Client(_))
                        && conn.out.pending()
                            >= self.cfg.max_frame.saturating_mul(SHED_HIGH_WATER_FRAMES);
                    let mut node = locked(&self.shared.node);
                    for msg in msgs {
                        if overloaded {
                            if let Some(op) = msg.op() {
                                self.shared.sheds.fetch_add(1, Ordering::Relaxed);
                                outs.push((from, Msg::Shed { op }));
                                continue;
                            }
                        }
                        outs.extend(node.handle(from, msg, now));
                    }
                    true
                }
                Err(_) => false,
            },
        }
    }
}

/// The loop body. Runs until shutdown; dropping the state closes every
/// socket.
fn run(
    shared: Arc<EventShared>,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    cfg: NetServerConfig,
    gossip_period: Duration,
) {
    let me = shared.me;
    let (dial_tx, dial_rx) = mpsc::channel();
    let mut lp = Loop {
        shared,
        cfg,
        peers,
        conns: Vec::new(),
        routes: HashMap::new(),
        dials: HashMap::new(),
        dial_tx,
        rng: StdRng::seed_from_u64(0xbeef ^ u64::from(me.0)),
        drops_retired: 0,
    };
    let mut scratch = vec![0u8; SCRATCH];
    let idle = lp
        .cfg
        .poll_interval
        .min(Duration::from_millis(1))
        .max(Duration::from_micros(50));
    let mut next_gossip = Instant::now() + gossip_period;
    loop {
        if lp.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut progressed = false;

        // 1. Accept.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn::new(stream, &lp.cfg);
                    lp.insert(conn);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // 2. Finished dials.
        while let Ok(result) = dial_rx.try_recv() {
            lp.dial_done(result);
            progressed = true;
        }

        // 3. Read + dispatch (responses and forwarded messages are
        // enqueued as they are produced — pipelining).
        for idx in 0..lp.conns.len() {
            if lp.read_conn(idx, &mut scratch) {
                progressed = true;
            }
        }

        // 4. Gossip timer: the whole fan-out is enqueued here and hits
        // the sockets in one flush below (batched gossip).
        let now = Instant::now();
        if now >= next_gossip {
            next_gossip = now + gossip_period;
            let sim_now = lp.shared.now();
            let outs = locked(&lp.shared.node).on_gossip_timer(sim_now, &mut lp.rng);
            for (to, msg) in outs {
                lp.route(to, msg);
            }
            progressed = true;
        }

        // 4b. Group-commit flush: sync the store once the deferred-ack
        // window's deadline passes and release the held acks. Under any
        // other fsync policy this is a no-op returning nothing.
        let commit_wait: Option<Duration> = {
            let sim_now = lp.shared.now();
            let (commits, deadline) = {
                let mut node = locked(&lp.shared.node);
                let commits = node.flush_commits(sim_now, false);
                (commits, node.pending_commit_deadline())
            };
            if !commits.is_empty() {
                progressed = true;
            }
            for (to, msg) in commits {
                lp.route(to, msg);
            }
            deadline.map(|d| Duration::from_micros(d.saturating_sub(sim_now).as_micros()))
        };

        // 5. Flush: pack each connection's staged messages into coalesced
        // frames, then write every queue in one batch.
        let mut dead: Vec<usize> = Vec::new();
        {
            let mut stats = locked(&lp.shared.stats);
            for (idx, slot) in lp.conns.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                conn.staged
                    .drain_into(&mut conn.out, lp.cfg.max_frame, &mut stats);
                if conn.out.pending() == 0 {
                    continue;
                }
                match conn.out.flush_to(&mut conn.stream) {
                    Ok(n) => {
                        if n > 0 {
                            progressed = true;
                        }
                    }
                    Err(_) => dead.push(idx),
                }
            }
        }
        for idx in dead {
            lp.close(idx);
        }
        let live_drops: u64 = lp
            .conns
            .iter()
            .flatten()
            .map(|c| c.out.dropped())
            .fold(0, u64::saturating_add);
        lp.shared.drops.store(
            lp.drops_retired.saturating_add(live_drops),
            Ordering::Relaxed,
        );

        // 6. Idle wait, bounded by the gossip and group-commit deadlines.
        if !progressed {
            let mut wait = next_gossip.saturating_duration_since(Instant::now());
            if let Some(c) = commit_wait {
                wait = wait.min(c);
            }
            // lint:allow(L7): bounded idle wait (≤ poll_interval, capped by
            // the gossip/commit deadlines) taken only when no socket made
            // progress this tick — never on a request-bearing path.
            std::thread::sleep(idle.min(wait.max(Duration::from_micros(50))));
        }
    }
}
