//! The TCP repository server: one [`ServerNode`] behind a listener.
//!
//! [`NetServer::start`] runs one of two serving architectures, selected
//! by [`NetServerConfig::serving`]:
//!
//! - [`ServingMode::EventLoop`] (default) — the non-blocking
//!   readiness-driven loop in [`crate::event_loop`], with request
//!   pipelining and batched gossip flushes;
//! - [`ServingMode::Threaded`] — the legacy thread-per-connection path
//!   in this module, kept behind the flag until the event loop has a
//!   full parity record: one **accept loop** thread spawning a
//!   **reader** thread (frames → [`Msg`] → [`ServerNode::handle`]) and
//!   a **writer** thread per connection, plus one **gossip** thread
//!   routing [`ServerNode::on_gossip_timer`] output over a lazily-dialed
//!   outbound mesh with jittered bounded-backoff redial.
//!
//! In both modes the sans-I/O state machine is shared behind a mutex; it
//! is only ever locked for the duration of one `handle`/`on_gossip_timer`
//! call, never across I/O. Connections that send garbage are dropped;
//! unreachable peers or vanished clients make messages silently
//! evaporate — exactly the "silence, not errors" failure model the
//! quorum protocols assume.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_core::codec::decode_frame_msgs;
use sstore_core::metrics::WireStats;
use sstore_core::server::{Addr, ServerNode};
use sstore_core::types::ServerId;
use sstore_core::wire::Msg;
use sstore_simnet::SimTime;

use crate::backoff::Backoff;
use crate::frame::{decode_hello, encode_hello, read_frame, write_frame, DEFAULT_MAX_FRAME};

/// Which serving architecture a [`NetServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingMode {
    /// One non-blocking readiness-driven event loop for every
    /// connection, with request pipelining and batched gossip flushes.
    #[default]
    EventLoop,
    /// The legacy thread-per-connection path (reader + writer thread per
    /// socket). Kept until the event loop's parity record is long enough
    /// to delete it.
    Threaded,
}

/// Socket-layer tuning for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Upper bound on one inbound frame.
    pub max_frame: usize,
    /// Timeout for dialing a peer server.
    pub connect_timeout: Duration,
    /// First redial delay after a failed peer dial.
    pub backoff_min: Duration,
    /// Redial delay cap (doubles up to this).
    pub backoff_max: Duration,
    /// Poll interval of the accept and gossip loops (bounds shutdown
    /// latency, not throughput).
    pub poll_interval: Duration,
    /// Serving architecture (default: the event loop).
    pub serving: ServingMode,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            connect_timeout: Duration::from_millis(250),
            backoff_min: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
            poll_interval: Duration::from_millis(20),
            serving: ServingMode::default(),
        }
    }
}

/// Cap on messages a writer thread coalesces into one frame batch per
/// channel drain.
const WRITER_BATCH_MAX: usize = 32;

/// A live outbound link: generation (for safe deregistration) plus the
/// channel drained by the link's writer thread.
struct Link {
    gen: u64,
    tx: Sender<Msg>,
}

struct Shared {
    me: ServerId,
    node: Mutex<ServerNode>,
    links: Mutex<HashMap<Addr, Link>>,
    /// Socket clones used solely to unblock reader threads at shutdown.
    socks: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Peer listen addresses, indexed by `ServerId.0`.
    peers: Vec<SocketAddr>,
    /// Per-peer redial state: (earliest next attempt, jittered schedule).
    redial: Mutex<HashMap<ServerId, (Instant, Backoff)>>,
    /// Rng for redial jitter (shared by whichever connection thread hits
    /// a failed dial).
    dial_rng: Mutex<StdRng>,
    start: Instant,
    stats: Mutex<WireStats>,
    shutdown: AtomicBool,
    link_gen: AtomicU64,
    cfg: NetServerConfig,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Every critical section in this file either completes a whole state
/// mutation or performs none (the state machine's `handle` only commits
/// effects it returns), so a poisoned lock carries no torn state — and one
/// panicking connection thread must not wedge the entire server, which is
/// exactly the availability story the deployment exists to demonstrate.
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The serving-mode-specific half of a [`NetServer`].
enum Imp {
    Threaded(Arc<Shared>),
    Event(crate::event_loop::EventHandle),
}

/// One repository server listening on a TCP socket.
pub struct NetServer {
    imp: Imp,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Starts serving `node` on `listener`, gossiping with `peers` (listen
    /// addresses indexed by server id; the entry for `node.id()` itself is
    /// ignored).
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn start(
        node: ServerNode,
        listener: TcpListener,
        peers: Vec<SocketAddr>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer> {
        let local_addr = listener.local_addr()?;
        if cfg.serving == ServingMode::EventLoop {
            let handle = crate::event_loop::start(node, listener, peers, cfg)?;
            return Ok(NetServer {
                imp: Imp::Event(handle),
                local_addr,
            });
        }
        listener.set_nonblocking(true)?;
        let me = node.id();
        let gossip_period = Duration::from_micros(node.gossip_period().as_micros().max(1));
        let shared = Arc::new(Shared {
            me,
            node: Mutex::new(node),
            links: Mutex::new(HashMap::new()),
            socks: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            peers,
            redial: Mutex::new(HashMap::new()),
            dial_rng: Mutex::new(StdRng::seed_from_u64(0xd1a1 ^ u64::from(me.0))),
            start: Instant::now(),
            stats: Mutex::new(WireStats::new()),
            shutdown: AtomicBool::new(false),
            link_gen: AtomicU64::new(0),
            cfg,
        });

        // Accept loop.
        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || accept_loop(accept_shared, listener));
        // Gossip timer.
        let gossip_shared = shared.clone();
        let gossip = std::thread::spawn(move || gossip_loop(gossip_shared, gossip_period));
        locked(&shared.threads).extend([accept, gossip]);

        Ok(NetServer {
            imp: Imp::Threaded(shared),
            local_addr,
        })
    }

    /// The bound listen address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        match &self.imp {
            Imp::Threaded(shared) => shared.me,
            Imp::Event(handle) => handle.shared.me,
        }
    }

    /// Snapshot of the measured-vs-formula byte accounting for every frame
    /// this server has sent.
    pub fn wire_stats(&self) -> WireStats {
        match &self.imp {
            Imp::Threaded(shared) => locked(&shared.stats).clone(),
            Imp::Event(handle) => locked(&handle.shared.stats).clone(),
        }
    }

    /// Requests refused with an explicit [`Msg::Shed`] reply because the
    /// requesting connection's write queue crossed its high-water mark.
    /// Only the event loop sheds; the threaded path reports 0.
    pub fn shed_count(&self) -> u64 {
        match &self.imp {
            Imp::Threaded(_) => 0,
            Imp::Event(handle) => handle.shared.sheds.load(Ordering::Relaxed),
        }
    }

    /// Frames dropped at write-queue backpressure caps (silence from the
    /// receiver's view), totalled across live and closed connections.
    /// Only the event loop uses bounded write queues; the threaded path
    /// reports 0.
    pub fn dropped_frames(&self) -> u64 {
        match &self.imp {
            Imp::Threaded(_) => 0,
            Imp::Event(handle) => handle.shared.drops.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` against the server state machine (test/inspection hook).
    pub fn with_node<R>(&self, f: impl FnOnce(&ServerNode) -> R) -> R {
        match &self.imp {
            Imp::Threaded(shared) => f(&locked(&shared.node)),
            Imp::Event(handle) => f(&locked(&handle.shared.node)),
        }
    }

    /// Stops all threads and closes every connection. Blocks until the
    /// serving threads have exited.
    pub fn shutdown(self) {
        match self.imp {
            Imp::Event(handle) => handle.shutdown(),
            Imp::Threaded(shared) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                // Dropping the links closes the writer channels; shutting
                // the sockets down unblocks the readers.
                locked(&shared.links).clear();
                for sock in locked(&shared.socks).drain(..) {
                    let _ = sock.shutdown(Shutdown::Both);
                }
                let handles: Vec<JoinHandle<()>> = locked(&shared.threads).drain(..).collect();
                for h in handles {
                    let _ = h.join();
                }
            }
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn_shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    run_accepted(conn_shared, stream);
                });
                locked(&shared.threads).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(shared.cfg.poll_interval);
            }
        }
    }
}

/// Handles an accepted connection: read the hello, then serve frames.
fn run_accepted(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(ctrl) = stream.try_clone() else { return };
    locked(&shared.socks).push(ctrl);
    // The flag is set before shutdown() drains the registry; re-checking
    // after the push closes the race with a connection accepted mid-drain.
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let remote = match read_frame(&mut reader, shared.cfg.max_frame)
        .map_err(|_| ())
        .and_then(|payload| decode_hello(&payload).map_err(|_| ()))
    {
        Ok(addr) => addr,
        Err(()) => return, // not a store peer; drop silently
    };
    let _tx = register_link(&shared, remote, stream);
    reader_loop(&shared, remote, &mut reader);
}

/// Registers the writer side of a connection and returns its channel.
fn register_link(shared: &Arc<Shared>, remote: Addr, stream: TcpStream) -> Sender<Msg> {
    let (tx, rx) = unbounded::<Msg>();
    let gen = shared.link_gen.fetch_add(1, Ordering::SeqCst);
    locked(&shared.links).insert(
        remote,
        Link {
            gen,
            tx: tx.clone(),
        },
    );
    let writer_shared = shared.clone();
    let handle = std::thread::spawn(move || {
        writer_loop(writer_shared, remote, gen, stream, rx);
    });
    locked(&shared.threads).push(handle);
    tx
}

/// Drains a link's channel onto its socket until the channel closes or a
/// write fails; then deregisters the link (if it is still the current one).
fn writer_loop(
    shared: Arc<Shared>,
    remote: Addr,
    gen: u64,
    mut stream: TcpStream,
    rx: Receiver<Msg>,
) {
    'serve: for msg in rx.iter() {
        // Opportunistic coalescing: everything already sitting in the
        // channel rides in the same (possibly multi-message) frame batch
        // as the message we just blocked on.
        let mut batch = vec![msg];
        while batch.len() < WRITER_BATCH_MAX {
            match rx.try_recv() {
                Ok(m) => batch.push(m),
                Err(_) => break,
            }
        }
        let frames = {
            let mut stats = locked(&shared.stats);
            crate::coalesce::frames_from(batch, shared.cfg.max_frame, &mut stats)
        };
        for frame in frames {
            if write_frame(&mut stream, &frame, shared.cfg.max_frame).is_err() {
                break 'serve;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let mut links = locked(&shared.links);
    if links.get(&remote).is_some_and(|l| l.gen == gen) {
        links.remove(&remote);
    }
}

/// Reads frames and feeds them through the state machine until the
/// connection breaks or sends garbage.
fn reader_loop(shared: &Arc<Shared>, remote: Addr, reader: &mut TcpStream) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(reader, shared.cfg.max_frame) {
            Ok(p) => p,
            Err(_) => return, // closed or broken
        };
        let msgs = match decode_frame_msgs(&payload) {
            Ok(m) => m,
            Err(_) => {
                // Protocol violation: drop the whole connection rather than
                // guessing at resynchronization.
                let _ = reader.shutdown(Shutdown::Both);
                return;
            }
        };
        for msg in msgs {
            dispatch(shared, remote, msg);
        }
    }
}

/// Runs one message through the state machine and routes the output.
///
/// The threaded path has no per-tick flush point, so any group-commit
/// window the message opened is forced shut immediately — acks never
/// wait on a later message here (same-call batches still amortize).
fn dispatch(shared: &Arc<Shared>, from: Addr, msg: Msg) {
    let now = shared.now();
    let (outs, commits) = {
        let mut node = locked(&shared.node);
        let outs = node.handle(from, msg, now);
        let commits = node.flush_commits(now, true);
        (outs, commits)
    };
    for (to, out) in outs.into_iter().chain(commits) {
        route(shared, to, out);
    }
}

/// Delivers `msg` to `to` if a link exists (dialing peer servers on
/// demand); drops it otherwise — remote failure must look like silence.
fn route(shared: &Arc<Shared>, to: Addr, msg: Msg) {
    let existing = locked(&shared.links).get(&to).map(|l| l.tx.clone());
    let msg = if let Some(tx) = existing {
        match tx.send(msg) {
            Ok(()) => return,
            // Writer died between lookup and send; take the message back
            // and fall through to redial.
            Err(e) => e.0,
        }
    } else if let Addr::Client(_) = to {
        return; // client went away; nothing to do
    } else {
        msg
    };
    let Addr::Server(peer) = to else { return };
    if let Some(tx) = dial(shared, peer) {
        let _ = tx.send(msg);
    }
}

/// Dials a peer server (respecting backoff) and registers the link.
fn dial(shared: &Arc<Shared>, peer: ServerId) -> Option<Sender<Msg>> {
    if shared.shutdown.load(Ordering::SeqCst) || peer == shared.me {
        return None;
    }
    let addr = *shared.peers.get(peer.0 as usize)?;
    {
        let redial = locked(&shared.redial);
        if let Some((next_attempt, _)) = redial.get(&peer) {
            if Instant::now() < *next_attempt {
                return None;
            }
        }
    }
    match TcpStream::connect_timeout(&addr, shared.cfg.connect_timeout) {
        Ok(stream) => {
            let _ = stream.set_nodelay(true);
            let mut hello_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return None,
            };
            if write_frame(
                &mut hello_stream,
                &encode_hello(Addr::Server(shared.me)),
                shared.cfg.max_frame,
            )
            .is_err()
            {
                return None;
            }
            if let Ok(ctrl) = stream.try_clone() {
                locked(&shared.socks).push(ctrl);
            }
            // Same mid-drain race as in `run_accepted`.
            if shared.shutdown.load(Ordering::SeqCst) {
                let _ = stream.shutdown(Shutdown::Both);
                return None;
            }
            if let Ok(mut reader) = stream.try_clone() {
                let reader_shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    reader_loop(&reader_shared, Addr::Server(peer), &mut reader);
                });
                locked(&shared.threads).push(handle);
            }
            locked(&shared.redial).remove(&peer);
            Some(register_link(shared, Addr::Server(peer), stream))
        }
        Err(_) => {
            // Jittered bounded backoff: a partition that cut many links
            // at once must not make the whole fleet redial in lockstep.
            let mut rng = locked(&shared.dial_rng);
            let mut redial = locked(&shared.redial);
            let (next_attempt, schedule) = redial.entry(peer).or_insert_with(|| {
                (
                    Instant::now(),
                    Backoff::new(shared.cfg.backoff_min, shared.cfg.backoff_max),
                )
            });
            let delay = schedule.next_delay(&mut rng);
            *next_attempt = Instant::now() + delay;
            None
        }
    }
}

/// Fires the gossip timer on its period until shutdown.
fn gossip_loop(shared: Arc<Shared>, period: Duration) {
    let mut rng = StdRng::seed_from_u64(0xbeef ^ u64::from(shared.me.0));
    let mut next = Instant::now() + period;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        if now < next {
            std::thread::sleep(shared.cfg.poll_interval.min(next - now));
            continue;
        }
        next = now + period;
        let sim_now = shared.now();
        let outs = locked(&shared.node).on_gossip_timer(sim_now, &mut rng);
        for (to, msg) in outs {
            route(&shared, to, msg);
        }
    }
}
