//! The pipelined socket client: many in-flight operations, one
//! connection set.
//!
//! [`crate::NetClient`] is strictly blocking — one operation in flight,
//! `submit → wait → result`. [`PipeClient`] drives the *same*
//! [`ClientCore`] state machine over the same framed TCP protocol, but
//! non-blockingly: callers [`PipeClient::submit`] as many operations as
//! they like (the core tracks each by [`OpId`]) and then
//! [`PipeClient::pump`] readiness — every pump reads whatever responses
//! have arrived on any server connection, advances protocol timers, and
//! returns whichever operations completed, in whatever order the quorums
//! formed. Responses are matched to requests by the protocol's operation
//! id, not by arrival order, so a slow quorum for op 3 never blocks the
//! completion of op 7.
//!
//! This is the client-side half of the serving tentpole: one process can
//! multiplex thousands of logical sessions over `n` sockets (one per
//! server) instead of thousands of blocked threads. `sstore-load` is the
//! canonical consumer.
//!
//! Connection management mirrors [`crate::NetClient`]: each server gets
//! one lazily-dialed connection; failures surface as silence and the
//! shared [`sstore_core::RetryPolicy`] paces redials, with jitter so a
//! mass disconnect does not reconnect in lockstep.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_core::client::{ClientCore, ClientOp, OpResult, Outcome, Output};
use sstore_core::codec::{decode_frame_msgs, encode_msg};
use sstore_core::metrics::WireStats;
use sstore_core::server::Addr;
use sstore_core::types::{ClientId, GroupId, OpId, ServerId};
use sstore_core::wire::Msg;
use sstore_core::Context;
use sstore_simnet::SimTime;

use crate::backoff::LinkHealth;
use crate::conn::{FrameReader, WriteQueue};
use crate::frame::encode_hello;
use crate::NetClientConfig;

/// Scratch read-buffer size.
const SCRATCH: usize = 64 * 1024;

/// Per-connection write-queue cap, as a multiple of the frame cap.
const OUT_CAP_FRAMES: usize = 4;

/// Completed-read latencies kept for the hedging percentile.
const LAT_WINDOW: usize = 128;

/// Minimum latency samples before hedging may trigger — below this the
/// percentile is too noisy to call anything "slow".
const HEDGE_MIN_SAMPLES: usize = 16;

/// Per-server connection state.
struct PipeLink {
    /// The non-blocking socket, if the link is up.
    stream: Option<TcpStream>,
    reader: FrameReader,
    out: WriteQueue,
    /// Earliest time the next dial may be attempted.
    next_attempt: Instant,
    /// Fault streak and decorrelated-jitter redial pacing; quarantines
    /// flapping links (see [`crate::LinkHealth`]).
    health: LinkHealth,
}

/// Transport-level bookkeeping for one in-flight operation: the hard
/// per-op deadline (the retry *budget* in wall-clock form) and the
/// hedging state.
struct Pending {
    /// When the op is abandoned with [`Outcome::Unavailable`].
    deadline: Instant,
    /// Submission instant, for the completed-latency population.
    submitted: Instant,
    /// Read-family op, eligible for hedging and latency tracking.
    read: bool,
    /// Whether the one hedge this op gets has been spent.
    hedged: bool,
}

/// A non-blocking, pipelining client handle. See the module docs.
pub struct PipeClient {
    core: ClientCore,
    links: Vec<PipeLink>,
    addrs: Vec<SocketAddr>,
    cfg: NetClientConfig,
    rng: StdRng,
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    start: Instant,
    stats: WireStats,
    done: Vec<OpResult>,
    scratch: Vec<u8>,
    /// Transport bookkeeping per in-flight op (deadline, hedge state).
    pending: HashMap<OpId, Pending>,
    /// Ring of recent completed-read latencies (hedging percentile).
    lat: Vec<Duration>,
    lat_pos: usize,
    sheds_seen: u64,
    hedges: u64,
    expired: u64,
}

impl PipeClient {
    pub(crate) fn new(
        core: ClientCore,
        addrs: Vec<SocketAddr>,
        cfg: NetClientConfig,
    ) -> PipeClient {
        let retry = core.retry_policy();
        let min = Duration::from_micros(retry.dial_delay(1).as_micros());
        let max = Duration::from_micros(retry.max_delay.as_micros());
        let links = addrs
            .iter()
            .map(|_| PipeLink {
                stream: None,
                reader: FrameReader::new(cfg.max_frame),
                out: WriteQueue::new(cfg.max_frame, cfg.max_frame.saturating_mul(OUT_CAP_FRAMES)),
                next_attempt: Instant::now(),
                health: LinkHealth::new(min, max, max),
            })
            .collect();
        let seed = 0xb1be ^ u64::from(core.id().0);
        PipeClient {
            core,
            links,
            addrs,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            timers: BinaryHeap::new(),
            start: Instant::now(),
            stats: WireStats::new(),
            done: Vec::new(),
            scratch: vec![0u8; SCRATCH],
            pending: HashMap::new(),
            lat: Vec::with_capacity(LAT_WINDOW),
            lat_pos: 0,
            sheds_seen: 0,
            hedges: 0,
            expired: 0,
        }
    }

    /// This client's protocol id.
    pub fn id(&self) -> ClientId {
        self.core.id()
    }

    /// Operations begun but not yet completed.
    pub fn inflight(&self) -> usize {
        self.core.inflight()
    }

    /// The client's current context for `group`.
    pub fn context(&self, group: GroupId) -> Context {
        self.core.context(group)
    }

    /// Measured-vs-formula byte accounting for every frame sent.
    pub fn wire_stats(&self) -> &WireStats {
        &self.stats
    }

    /// Explicit load-shed responses received from servers. A shed is the
    /// server saying "overloaded, retry elsewhere" — distinguishable from
    /// Byzantine silence, and escalated immediately by the core.
    pub fn sheds_seen(&self) -> u64 {
        self.sheds_seen
    }

    /// Reads hedged to one extra server after crossing the configured
    /// latency percentile ([`NetClientConfig::hedge_percentile`]).
    pub fn hedges(&self) -> u64 {
        self.hedges
    }

    /// Operations abandoned at their per-op deadline and surfaced as
    /// [`Outcome::Unavailable`] completions.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Links currently quarantined as flapping by their health score.
    pub fn quarantined_links(&self) -> usize {
        self.links.iter().filter(|l| l.health.quarantined()).count()
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    /// Begins `op` without waiting for it; its messages are *staged* on
    /// this call and hit the sockets on the next [`PipeClient::pump`] —
    /// a burst of submits between pumps coalesces into one write per
    /// connection instead of one syscall per operation. Call
    /// [`PipeClient::flush`] to force the staged bytes out early. The
    /// returned [`OpId`] matches the eventual [`OpResult::op`].
    pub fn submit(&mut self, op: ClientOp) -> OpId {
        self.ensure_links();
        let read = matches!(op, ClientOp::Read { .. } | ClientOp::MwRead { .. });
        let now = self.now();
        let (op_id, out) = self.core.begin(op, now, &mut self.rng);
        let started = Instant::now();
        self.pending.insert(
            op_id,
            Pending {
                deadline: started + self.cfg.request_timeout,
                submitted: started,
                read,
                hedged: false,
            },
        );
        self.apply(out);
        op_id
    }

    /// Forces staged writes onto the sockets without running a full pump
    /// round — for callers that submit and then wait on something other
    /// than [`PipeClient::pump`].
    pub fn flush(&mut self) {
        self.flush_links();
    }

    /// One readiness round: redial due links, fire due protocol timers,
    /// drain every readable socket through the state machine, flush
    /// pending writes. Returns every operation that completed, in
    /// completion order (which may be any order relative to submission).
    pub fn pump(&mut self) -> Vec<OpResult> {
        self.ensure_links();
        self.fire_due_timers();
        self.read_links();
        self.expire_overdue();
        self.maybe_hedge();
        self.flush_links();
        std::mem::take(&mut self.done)
    }

    /// Pumps until at least one operation completes or `deadline`
    /// passes, sleeping briefly between empty rounds. Per-op deadlines
    /// fire *inside* the pump, so an operation past its retry budget
    /// comes back as a completed [`Outcome::Unavailable`] result rather
    /// than lingering in the op table forever.
    pub fn pump_until(&mut self, deadline: Instant) -> Vec<OpResult> {
        loop {
            let done = self.pump();
            if !done.is_empty() || Instant::now() >= deadline {
                return done;
            }
            let next_expiry = self.pending.values().map(|p| p.deadline).min();
            let wake = self
                .timers
                .peek()
                .map(|Reverse((t, _))| *t)
                .unwrap_or(deadline)
                .min(next_expiry.unwrap_or(deadline))
                .min(deadline);
            let nap = wake
                .saturating_duration_since(Instant::now())
                .min(Duration::from_micros(500));
            std::thread::sleep(nap.max(Duration::from_micros(50)));
        }
    }

    /// Sends effects, arms timers, banks completions.
    fn apply(&mut self, out: Output) {
        for (to, msg) in out.sends {
            self.send(to, &msg);
        }
        for (delay, token) in out.timers {
            let at = Instant::now() + Duration::from_micros(delay.as_micros());
            self.timers.push(Reverse((at, token)));
        }
        for r in out.done {
            if let Some(p) = self.pending.remove(&r.op) {
                if p.read && matches!(r.outcome, Outcome::ReadOk { .. }) {
                    self.record_latency(p.submitted.elapsed());
                }
            }
            self.done.push(r);
        }
    }

    /// Banks one completed-read latency in the bounded ring.
    fn record_latency(&mut self, d: Duration) {
        if self.lat.len() < LAT_WINDOW {
            self.lat.push(d);
        } else {
            if let Some(slot) = self.lat.get_mut(self.lat_pos) {
                *slot = d;
            }
            self.lat_pos = (self.lat_pos + 1) % LAT_WINDOW;
        }
    }

    /// Abandons every op past its per-op deadline, surfacing each as a
    /// completed [`Outcome::Unavailable`] result — the transport-level
    /// retry budget: however many protocol rounds remain, the caller gets
    /// an answer by `submit + request_timeout`.
    fn expire_overdue(&mut self) {
        let cutoff = Instant::now();
        let overdue: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, p)| cutoff >= p.deadline)
            .map(|(id, _)| *id)
            .collect();
        for op_id in overdue {
            self.pending.remove(&op_id);
            let now = self.now();
            if let Some(r) = self.core.expire(op_id, now) {
                self.expired = self.expired.saturating_add(1);
                self.done.push(r);
            }
        }
    }

    /// Hedges reads that have outlived the configured percentile of the
    /// recent completed-read latency population: one extra server gets
    /// the current-phase request, once per op, without consuming a retry
    /// round. Off unless [`NetClientConfig::hedge_percentile`] is set and
    /// enough samples have accumulated.
    fn maybe_hedge(&mut self) {
        let Some(p) = self.cfg.hedge_percentile else {
            return;
        };
        if self.lat.len() < HEDGE_MIN_SAMPLES {
            return;
        }
        let threshold = self.latency_percentile(p);
        let cutoff = Instant::now();
        let slow: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, t)| {
                t.read && !t.hedged && cutoff.saturating_duration_since(t.submitted) > threshold
            })
            .map(|(id, _)| *id)
            .collect();
        for op_id in slow {
            if let Some(t) = self.pending.get_mut(&op_id) {
                t.hedged = true;
            }
            let now = self.now();
            let out = self.core.hedge(op_id, now);
            if !out.sends.is_empty() {
                self.hedges = self.hedges.saturating_add(1);
            }
            self.apply(out);
        }
    }

    /// The `p`-percentile of the recent completed-read latencies.
    fn latency_percentile(&self, p: f64) -> Duration {
        let mut v = self.lat.clone();
        v.sort_unstable();
        let idx = ((v.len().saturating_sub(1)) as f64 * p.clamp(0.0, 1.0)) as usize;
        v.get(idx).copied().unwrap_or(Duration::MAX)
    }

    /// Enqueues one message for `to` if its link is up; silence if not.
    fn send(&mut self, to: ServerId, msg: &Msg) {
        let Some(link) = self.links.get_mut(usize::from(to.0)) else {
            return;
        };
        if link.stream.is_none() {
            return;
        }
        let bytes = encode_msg(msg);
        self.stats.record(msg, bytes.len());
        // lint:allow(L10): backpressure-as-silence — a full write queue
        // drops the request like a lossy network; the client core's
        // deadline/retry machinery is the designed recovery path, not an
        // error return from deep inside the fan-out loop.
        let _ = link.out.enqueue(&bytes);
    }

    /// (Re)dials every down link whose backoff has elapsed. The dial
    /// itself is the one blocking call in this client (bounded by
    /// `connect_timeout`); jittered retry-policy backoff paces attempts.
    fn ensure_links(&mut self) {
        let me = self.core.id();
        for i in 0..self.links.len() {
            let due = match self.links.get(i) {
                Some(link) => link.stream.is_none() && Instant::now() >= link.next_attempt,
                None => false,
            };
            if !due {
                continue;
            }
            let Some(&addr) = self.addrs.get(i) else {
                continue;
            };
            let dialed =
                TcpStream::connect_timeout(&addr, self.cfg.connect_timeout).and_then(|stream| {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    Ok(stream)
                });
            let Some(link) = self.links.get_mut(i) else {
                continue;
            };
            match dialed {
                Ok(stream) => {
                    link.health.on_connect(Instant::now());
                    link.reader = FrameReader::new(self.cfg.max_frame);
                    link.out = WriteQueue::new(
                        self.cfg.max_frame,
                        self.cfg.max_frame.saturating_mul(OUT_CAP_FRAMES),
                    );
                    if link.out.enqueue(&encode_hello(Addr::Client(me))).is_err() {
                        continue;
                    }
                    link.stream = Some(stream);
                }
                Err(_) => {
                    let delay = link.health.on_dial_failure(&mut self.rng);
                    link.next_attempt = Instant::now() + delay;
                }
            }
        }
    }

    /// Tears down server `i`'s connection. Redial pacing comes from the
    /// link's health score: a long-lived connection that died redials
    /// promptly, while a flapping link keeps its fault streak and backs
    /// off — quarantined out of quorum formation until it stays up.
    fn drop_link(&mut self, i: usize) {
        if let Some(link) = self.links.get_mut(i) {
            if let Some(stream) = link.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            let delay = link.health.on_drop(Instant::now(), &mut self.rng);
            link.next_attempt = Instant::now() + delay;
        }
    }

    /// Fires every protocol timer whose deadline has passed.
    fn fire_due_timers(&mut self) {
        while let Some(Reverse((t, token))) = self.timers.peek().copied() {
            if t > Instant::now() {
                break;
            }
            self.timers.pop();
            let now = self.now();
            let out = self.core.on_timeout(token, now);
            self.apply(out);
        }
    }

    /// Drains every readable link, feeding complete frames through the
    /// state machine.
    fn read_links(&mut self) {
        for i in 0..self.links.len() {
            // Collect this link's complete messages first, then run them
            // through the core (which may enqueue sends on *other* links).
            let mut inbound: Vec<Msg> = Vec::new();
            let mut alive = true;
            {
                let Some(link) = self.links.get_mut(i) else {
                    continue;
                };
                let Some(stream) = link.stream.as_mut() else {
                    continue;
                };
                'read: loop {
                    match stream.read(&mut self.scratch) {
                        Ok(0) => {
                            alive = false;
                            break;
                        }
                        Ok(n) => {
                            let Some(bytes) = self.scratch.get(..n) else {
                                alive = false;
                                break;
                            };
                            link.reader.ingest(bytes);
                            loop {
                                match link.reader.next_frame() {
                                    Ok(Some(frame)) => match decode_frame_msgs(&frame) {
                                        Ok(msgs) => inbound.extend(msgs),
                                        Err(_) => {
                                            alive = false;
                                            break 'read;
                                        }
                                    },
                                    Ok(None) => break,
                                    Err(_) => {
                                        alive = false;
                                        break 'read;
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            alive = false;
                            break;
                        }
                    }
                }
            }
            if !alive {
                self.drop_link(i);
            }
            let sid = ServerId(u16::try_from(i).unwrap_or(u16::MAX));
            for msg in inbound {
                if matches!(msg, Msg::Shed { .. }) {
                    self.sheds_seen = self.sheds_seen.saturating_add(1);
                }
                let now = self.now();
                let out = self.core.on_message(sid, msg, now);
                self.apply(out);
            }
        }
    }

    /// Flushes every link's write queue as far as the sockets allow.
    fn flush_links(&mut self) {
        let mut dead: Vec<usize> = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            let Some(stream) = link.stream.as_mut() else {
                continue;
            };
            if link.out.pending() == 0 {
                continue;
            }
            if link.out.flush_to(stream).is_err() {
                dead.push(i);
            }
        }
        for i in dead {
            self.drop_link(i);
        }
    }
}

impl Drop for PipeClient {
    fn drop(&mut self) {
        for link in &mut self.links {
            if let Some(stream) = link.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}
