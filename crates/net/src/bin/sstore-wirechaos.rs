//! `sstore-wirechaos` — seeded wire-level chaos campaigns against real
//! `sstore-server` processes behind fault-injecting TCP proxies.
//!
//! ```text
//! # standard campaign (both oracles must hold on every seed)
//! sstore-wirechaos --seeds 0..100
//!
//! # over-faulted probe (b+1 servers partitioned for the whole run;
//! # the harness is expected to flag some seeds — exit 0 only if it does)
//! sstore-wirechaos --seeds 0..10 --over-faulted --expect-flagged
//!
//! # re-run a minimal replay file and check the grammar round-trips
//! sstore-wirechaos --replay wirechaos-failures/seed-17.replay
//!
//! # EXPERIMENTS.md table (runs both campaigns)
//! sstore-wirechaos --seeds 0..100 --markdown
//! ```
//!
//! Failing seeds are shrunk with delta debugging and written as replay
//! files that re-execute the identical schedule byte-for-byte (the
//! grammar round-trips exactly; wall-clock nondeterminism of a real
//! network means verdicts are reproduced at schedule level, unlike the
//! simulator's bit-identical replays).
//!
//! Exit codes match `sstore-chaos`: `0` success (or expected flags
//! present), `1` oracle failure / missing expected flags / IO or
//! environment error, `2` bad usage or a replay file whose grammar
//! does not round-trip.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sstore_net::wirechaos::{
    self, WireChaosConfig, WireFailureClass, WireRunOptions, WireSchedule, WireVerdict,
};

const USAGE: &str = "usage: sstore-wirechaos [--seeds A..B] [--n N] [--b B] \
     [--over-faulted] [--expect-flagged] [--jobs J] \
     [--server-bin PATH] [--fsync SPEC] [--request-timeout MS] \
     [--json] [--markdown] [--out DIR] [--shrink-budget N] \
     | --replay FILE [--json]";

struct Args {
    seed_from: u64,
    seed_to: u64,
    n: usize,
    b: usize,
    over_faulted: bool,
    expect_flagged: bool,
    jobs: usize,
    options: WireRunOptions,
    markdown: bool,
    json: bool,
    out_dir: String,
    shrink_budget: usize,
    replay: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed_from: 0,
            seed_to: 100,
            n: 4,
            b: 1,
            over_faulted: false,
            expect_flagged: false,
            jobs: 2,
            options: WireRunOptions::default(),
            markdown: false,
            json: false,
            out_dir: "wirechaos-failures".to_string(),
            shrink_budget: 12,
            replay: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match flag.as_str() {
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, z) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds expects A..B, got {spec}"))?;
                args.seed_from = a.parse().map_err(|e| format!("bad seed {a}: {e}"))?;
                args.seed_to = z.parse().map_err(|e| format!("bad seed {z}: {e}"))?;
                if args.seed_to <= args.seed_from {
                    return Err(format!("empty seed range {spec}"));
                }
            }
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--b" => args.b = value("--b")?.parse().map_err(|e| format!("bad --b: {e}"))?,
            "--over-faulted" => args.over_faulted = true,
            "--expect-flagged" => args.expect_flagged = true,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .ok()
                    .filter(|j| *j >= 1)
                    .ok_or("bad --jobs (J >= 1)")?;
            }
            "--server-bin" => args.options.server_bin = PathBuf::from(value("--server-bin")?),
            "--fsync" => args.options.fsync = value("--fsync")?,
            "--request-timeout" => {
                args.options.request_timeout_ms = value("--request-timeout")?
                    .parse()
                    .map_err(|e| format!("bad --request-timeout: {e}"))?;
            }
            "--markdown" => args.markdown = true,
            "--json" => args.json = true,
            "--out" => args.out_dir = value("--out")?,
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("bad --shrink-budget: {e}"))?;
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn verdict_json(v: &WireVerdict) -> String {
    let class = match v.class() {
        Some(WireFailureClass::Safety) => "\"safety\"".to_string(),
        Some(WireFailureClass::Liveness) => "\"liveness\"".to_string(),
        None => "null".to_string(),
    };
    let list = |items: &[String]| {
        items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"seed\":{},\"passed\":{},\"class\":{},\"ops_ok\":{},\"ops_total\":{},\
         \"sheds\":{},\"hedges\":{},\"expired\":{},\"quarantined\":{},\
         \"safety\":[{}],\"liveness\":[{}]}}",
        v.seed,
        v.passed(),
        class,
        v.ops_ok,
        v.ops_total,
        v.sheds_seen,
        v.hedges,
        v.expired,
        v.quarantined,
        list(&v.safety),
        list(&v.liveness),
    )
}

/// Aggregate counters for one campaign section.
#[derive(Default)]
struct Tally {
    seeds: usize,
    passed: usize,
    safety_flagged: usize,
    liveness_flagged: usize,
    ops_ok: usize,
    ops_total: usize,
    sheds: u64,
    hedges: u64,
    expired: u64,
}

impl Tally {
    fn absorb(&mut self, v: &WireVerdict) {
        self.seeds += 1;
        if v.passed() {
            self.passed += 1;
        }
        if !v.safety_ok() {
            self.safety_flagged += 1;
        }
        if !v.liveness_ok() {
            self.liveness_flagged += 1;
        }
        self.ops_ok += v.ops_ok;
        self.ops_total += v.ops_total;
        self.sheds += v.sheds_seen;
        self.hedges += v.hedges;
        self.expired += v.expired;
    }

    fn availability(&self) -> f64 {
        if self.ops_total == 0 {
            return 0.0;
        }
        self.ops_ok as f64 / self.ops_total as f64
    }
}

/// Runs one campaign section across `--jobs` worker threads; each run
/// is an independent cluster on its own ephemeral ports and temp dirs.
fn run_section(
    args: &Args,
    cfg: &WireChaosConfig,
    label: &str,
) -> Result<(Tally, Vec<u64>), String> {
    let next = AtomicU64::new(args.seed_from);
    let results: Mutex<Vec<WireVerdict>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..args.jobs.max(1) {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= args.seed_to {
                    break;
                }
                let schedule = wirechaos::generate(seed, cfg);
                match wirechaos::run(&schedule, &args.options) {
                    Ok(verdict) => {
                        if !args.json && !args.markdown && !verdict.passed() {
                            eprintln!(
                                "[{label}] seed {seed}: safety={:?} liveness={:?}",
                                verdict.safety, verdict.liveness
                            );
                        }
                        if let Ok(mut all) = results.lock() {
                            all.push(verdict);
                        }
                    }
                    Err(e) => {
                        if let Ok(mut errs) = errors.lock() {
                            errs.push(format!("seed {seed}: {e}"));
                        }
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap_or_default();
    if let Some(first) = errors.first() {
        return Err(format!("{} run error(s), first: {first}", errors.len()));
    }
    let mut results = results.into_inner().unwrap_or_default();
    results.sort_by_key(|v| v.seed);
    let mut tally = Tally::default();
    let mut failing = Vec::new();
    for v in &results {
        tally.absorb(v);
        if !v.passed() {
            failing.push(v.seed);
        }
        if args.json {
            println!("{}", verdict_json(v));
        }
    }
    Ok((tally, failing))
}

/// Shrinks each failing seed and writes the minimal schedule as a
/// replay file under `out_dir`. Returns the written paths.
fn shrink_and_emit(
    args: &Args,
    cfg: &WireChaosConfig,
    failing: &[u64],
) -> Result<Vec<String>, String> {
    if failing.is_empty() {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", args.out_dir))?;
    let mut written = Vec::new();
    for &seed in failing {
        let schedule = wirechaos::generate(seed, cfg);
        let shrunk = wirechaos::shrink(&schedule, args.shrink_budget, &args.options)?;
        let path = format!("{}/seed-{seed}.replay", args.out_dir);
        std::fs::write(&path, shrunk.schedule.to_text())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "[shrink] seed {seed}: {:?} reproduced in {} runs -> {path}",
            shrunk.class, shrunk.runs
        );
        written.push(path);
    }
    Ok(written)
}

fn replay(path: &str, options: &WireRunOptions, json: bool) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = WireSchedule::from_text(&text)?;
    // Byte-for-byte replay at schedule level: serializing the parsed
    // schedule and parsing it again must be the identity.
    let round = schedule.to_text();
    match WireSchedule::from_text(&round) {
        Ok(again) if again == schedule => {}
        _ => {
            eprintln!("replay {path}: grammar does not round-trip");
            return Ok(ExitCode::from(2));
        }
    }
    let verdict = wirechaos::run(&schedule, options)?;
    if json {
        println!("{}", verdict_json(&verdict));
    } else {
        println!(
            "replay {path}: seed={} passed={} class={:?}",
            verdict.seed,
            verdict.passed(),
            verdict.class()
        );
        for v in &verdict.safety {
            println!("  safety: {v}");
        }
        for v in &verdict.liveness {
            println!("  liveness: {v}");
        }
        println!("replay {path}: schedule round-trips byte-for-byte");
    }
    Ok(ExitCode::SUCCESS)
}

fn markdown_table(standard: &Tally, over: &Tally, args: &Args) -> String {
    let row = |label: &str, faulty: String, t: &Tally| {
        format!(
            "| {label} | {faulty} | {} | {} | {} | {} | {}/{} ({:.1}%) | {} | {} | {} |\n",
            t.seeds,
            t.passed,
            t.safety_flagged,
            t.liveness_flagged,
            t.ops_ok,
            t.ops_total,
            100.0 * t.availability(),
            t.sheds,
            t.hedges,
            t.expired,
        )
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| campaign (n={}, b={}) | unreachable | seeds | passed | safety flags | \
         liveness flags | ops completed | sheds | hedges | expired |",
        args.n, args.b
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    out.push_str(&row(
        "standard (wire faults within budget)",
        format!("<= {}", args.b),
        standard,
    ));
    out.push_str(&row(
        "over-faulted (b+1 partitioned all run)",
        format!("{}", args.b + 1),
        over,
    ));
    out
}

fn campaign(args: &Args) -> Result<ExitCode, String> {
    if args.markdown {
        let std_cfg = WireChaosConfig::standard(args.n, args.b);
        let over_cfg = WireChaosConfig::over_faulted(args.n, args.b);
        let (std_tally, std_failing) = run_section(args, &std_cfg, "standard")?;
        let (over_tally, _) = run_section(args, &over_cfg, "over-faulted")?;
        print!("{}", markdown_table(&std_tally, &over_tally, args));
        let ok = std_failing.is_empty() && over_tally.liveness_flagged > 0;
        return Ok(if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    let cfg = if args.over_faulted {
        WireChaosConfig::over_faulted(args.n, args.b)
    } else {
        WireChaosConfig::standard(args.n, args.b)
    };
    let label = if args.over_faulted {
        "over-faulted"
    } else {
        "standard"
    };
    let (tally, failing) = run_section(args, &cfg, label)?;
    eprintln!(
        "[{label}] seeds {}..{}: {}/{} passed, {} safety / {} liveness flags, \
         {}/{} ops ok ({:.1}% availability), {} sheds, {} hedges, {} expired",
        args.seed_from,
        args.seed_to,
        tally.passed,
        tally.seeds,
        tally.safety_flagged,
        tally.liveness_flagged,
        tally.ops_ok,
        tally.ops_total,
        100.0 * tally.availability(),
        tally.sheds,
        tally.hedges,
        tally.expired,
    );

    if args.expect_flagged {
        // The probe must demonstrate the harness catches real
        // starvation: with b+1 servers gone past budget, calm-phase
        // quorums cannot form and liveness must flag.
        if tally.liveness_flagged == 0 && tally.safety_flagged == 0 {
            eprintln!("[{label}] expected the oracles to flag at least one seed; none were");
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if failing.is_empty() {
        return Ok(ExitCode::SUCCESS);
    }
    let written = shrink_and_emit(args, &cfg, &failing)?;
    eprintln!(
        "[{label}] {} failing seed(s); minimal replays in {:?}",
        failing.len(),
        written
    );
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match &args.replay {
        Some(path) => replay(path, &args.options, args.json),
        None => campaign(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sstore-wirechaos: {msg}");
            ExitCode::FAILURE
        }
    }
}
