//! `sstore-server`: one repository server per process.
//!
//! ```text
//! sstore-server --id 0 --b 1 --listen 127.0.0.1:7450 \
//!     --peers 127.0.0.1:7450,127.0.0.1:7451,127.0.0.1:7452,127.0.0.1:7453 \
//!     [--clients 8] [--key-seed 0x7ea1] \
//!     [--data-dir PATH] [--fsync always|never|interval:N] \
//!     [--serving event-loop|threaded]
//! ```
//!
//! `--peers` lists every server's listen address in server-id order (the
//! entry at position `--id` is this process); `n` is its length. All
//! servers and clients of one deployment must agree on `--clients` and
//! `--key-seed`, which stand in for the paper's well-known client public
//! keys.
//!
//! With `--data-dir` the server keeps a write-ahead log plus periodic
//! snapshots under that directory and replays them on start, so a
//! killed process restarted at the same directory comes back with every
//! durable item, context, and multi-writer hold-back. Each server needs
//! its own directory. `--fsync` trades durability for throughput:
//! `always` (default) syncs every record, `interval:N` every N records
//! (acks may lead durability), `group-commit:N:USEC` batches up to N
//! records or USEC microseconds per fsync *while holding write acks
//! until the sync lands* (throughput without weakening the ack), and
//! `never` leaves flushing to the OS.
//!
//! `--gossip-summary-every K` sends the full anti-entropy summary only
//! every K-th gossip round, pushing just the dirty set in between
//! (default 1: summarize every round).
//!
//! `--serving` selects the serving architecture: the default
//! `event-loop` (one non-blocking readiness loop, request pipelining,
//! batched gossip flushes) or the legacy `threaded`
//! (thread-per-connection) path.
//!
//! `--stats-every SECS` prints a periodic health line to stdout with the
//! storage fault count, backpressure frame drops, and shed replies
//! (default 30; 0 disables the line entirely).

use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::process::exit;

use sstore_core::config::ServerConfig;
use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::server::storage::{FsyncPolicy, StorageConfig, Store};
use sstore_core::server::ServerNode;
use sstore_core::types::ServerId;
use sstore_net::{NetServer, NetServerConfig, ServingMode};

const USAGE: &str = "usage: sstore-server --id N --b B --listen ADDR --peers A,B,C,... \
                     [--clients N] [--key-seed SEED] [--data-dir PATH] \
                     [--fsync always|never|interval:N|group-commit:N:USEC] \
                     [--gossip-summary-every K] [--serving event-loop|threaded] \
                     [--stats-every SECS]";

struct Args {
    id: u16,
    b: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    clients: u16,
    key_seed: u64,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    summary_every: u32,
    serving: ServingMode,
    stats_every: u64,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_fsync(s: &str) -> Result<FsyncPolicy, String> {
    const BAD: &str = "bad --fsync (always|never|interval:N|group-commit:N:USEC)";
    match s {
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        other => {
            if let Some(num) = other.strip_prefix("interval:") {
                return num
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .map(FsyncPolicy::EveryN)
                    .ok_or_else(|| BAD.to_string());
            }
            let Some(rest) = other.strip_prefix("group-commit:") else {
                return Err(BAD.to_string());
            };
            let Some((batch, delay)) = rest.split_once(':') else {
                return Err(BAD.to_string());
            };
            let max_batch: u32 = batch
                .parse()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| BAD.to_string())?;
            let max_delay_us: u64 = delay.parse().map_err(|_| BAD.to_string())?;
            Ok(FsyncPolicy::GroupCommit {
                max_batch,
                max_delay_us,
            })
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut b = None;
    let mut listen = None;
    let mut peers = None;
    let mut clients = 8u16;
    let mut key_seed = 0x7ea1u64;
    let mut data_dir = None;
    let mut fsync = FsyncPolicy::Always;
    let mut summary_every = 1u32;
    let mut serving = ServingMode::default();
    let mut stats_every = 30u64;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let value = argv.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--id" => id = Some(value.parse().map_err(|_| "bad --id")?),
            "--b" => b = Some(value.parse().map_err(|_| "bad --b")?),
            "--listen" => listen = Some(value.parse().map_err(|_| "bad --listen")?),
            "--peers" => {
                let parsed: Result<Vec<SocketAddr>, _> = value.split(',').map(str::parse).collect();
                peers = Some(parsed.map_err(|_| "bad --peers")?);
            }
            "--clients" => clients = value.parse().map_err(|_| "bad --clients")?,
            "--key-seed" => {
                key_seed = parse_u64(&value).ok_or("bad --key-seed")?;
            }
            "--data-dir" => data_dir = Some(value),
            "--fsync" => {
                fsync = parse_fsync(&value)?;
            }
            "--gossip-summary-every" => {
                summary_every = value
                    .parse()
                    .ok()
                    .filter(|k| *k >= 1)
                    .ok_or("bad --gossip-summary-every (K >= 1)")?;
            }
            "--serving" => {
                serving = match value.as_str() {
                    "event-loop" => ServingMode::EventLoop,
                    "threaded" => ServingMode::Threaded,
                    _ => return Err("bad --serving (event-loop|threaded)".to_string()),
                };
            }
            "--stats-every" => {
                stats_every = value.parse().map_err(|_| "bad --stats-every (SECS)")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        b: b.ok_or("--b is required")?,
        listen: listen.ok_or("--listen is required")?,
        peers: peers.ok_or("--peers is required")?,
        clients,
        key_seed,
        data_dir,
        fsync,
        summary_every,
        serving,
        stats_every,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sstore-server: {e}\n{USAGE}");
            exit(2);
        }
    };
    let n = args.peers.len();
    if usize::from(args.id) >= n {
        eprintln!("sstore-server: --id {} out of range for {n} peers", args.id);
        exit(2);
    }
    let (_, verifying) = generate_client_keys(args.clients, args.key_seed);
    let dir = Directory::new(n, args.b, verifying);
    let mut server_cfg = ServerConfig::default();
    server_cfg.gossip.summary_every = args.summary_every;
    let mut node = ServerNode::new(ServerId(args.id), dir, server_cfg);
    if let Some(dir) = &args.data_dir {
        let cfg = StorageConfig {
            fsync: args.fsync,
            ..StorageConfig::default()
        };
        let store = match Store::open(Path::new(dir), cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sstore-server: cannot open data dir {dir}: {e}");
                exit(1);
            }
        };
        node.attach_store(store);
        match node.recover() {
            Ok(report) => {
                println!(
                    "sstore-server {}: recovered {} record(s) from {dir} \
                     (rejected {}, torn tail: {}, bit-rot faults: {})",
                    args.id, report.records, report.rejected, report.torn_tail, report.bitrot
                );
            }
            Err(e) => {
                eprintln!("sstore-server: recovery from {dir} failed: {e}");
                exit(1);
            }
        }
    }
    let listener = match TcpListener::bind(args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sstore-server: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    let server = match NetServer::start(
        node,
        listener,
        args.peers.clone(),
        NetServerConfig {
            serving: args.serving,
            ..NetServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sstore-server: cannot start: {e}");
            exit(1);
        }
    };
    println!(
        "sstore-server {}/{n} (b={}) listening on {}",
        args.id,
        args.b,
        server.local_addr()
    );
    if args.stats_every == 0 {
        loop {
            std::thread::park();
        }
    }
    // Periodic health line: storage faults (WAL append/fsync failures and
    // deferred-ack cap rejections), backpressure frame drops, and shed
    // replies. One line per interval keeps long-running daemons greppable
    // without a metrics endpoint.
    let period = std::time::Duration::from_secs(args.stats_every);
    loop {
        std::thread::sleep(period);
        let faults = server.with_node(|n| n.storage_faults());
        println!(
            "sstore-server {}: stats storage_faults={faults} dropped_frames={} sheds={}",
            args.id,
            server.dropped_frames(),
            server.shed_count(),
        );
    }
}
