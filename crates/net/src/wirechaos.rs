//! Wire-level chaos: seeded fault injection between real clients and
//! real `sstore-server` processes.
//!
//! [`crate::NetClient`]'s protocol logic is validated twice before it
//! reaches this module: once in the deterministic simulator
//! ([`sstore_core::chaos`]) and once over in-process channels. What
//! neither layer exercises is the *wire itself* — kernel socket
//! buffers, partial reads, RST mid-frame, a peer that accepts and then
//! says nothing. This module closes that gap with a seeded,
//! deterministic-schedule TCP proxy interposed on every client↔server
//! link of a real multi-process cluster:
//!
//! - **added latency / jitter** — per-chunk forwarding delay;
//! - **bandwidth throttle** — slow-loris trickle, a few bytes per tick;
//! - **byte corruption** — a bit flipped in every k-th forwarded chunk
//!   (framing or signature checks must reject it; nothing may panic);
//! - **connection resets** — live connections torn down mid-frame;
//! - **half-open links** — accept, then silence, forever;
//! - **partitions** — connections refused and existing ones severed;
//! - **process kill/restart** — a real `SIGKILL` against the server
//!   process, restarted later at the same data dir (WAL recovery).
//!
//! The machinery mirrors [`sstore_core::chaos`]: a pure
//! [`generate`] maps `(seed, config)` to a [`WireSchedule`], [`run`]
//! executes it against a freshly spawned cluster and judges the
//! observed operation history with the same two oracles (safety:
//! provenance + per-client timestamp monotonicity; liveness:
//! calm-phase operations succeed), [`shrink`] delta-debugs failing
//! schedules, and a versioned text grammar
//! (`sstore-wirechaos-schedule v1`) replays them byte-for-byte.
//!
//! Faults are only scheduled inside the turbulence window; the safety
//! oracle must hold *always* (real servers are honest, and signatures
//! make corrupted bytes detectable), while liveness is only demanded
//! of operations issued after turbulence ends and the settle window
//! (sized past the maximum redial backoff) has elapsed. The
//! over-faulted probe partitions `b + 1` servers for the whole run —
//! the harness must flag those seeds, or it isn't measuring anything.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sstore_core::chaos::{chaos_value, parse_chaos_value};
use sstore_core::client::{ClientOp, OpResult, Outcome};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp, TsOrder};
use sstore_core::ClientConfig;

use crate::pipeline::PipeClient;
use crate::{NetClientConfig, NetCluster};

/// All chaos traffic lives in one data group, like the simulator's.
const GROUP: GroupId = GroupId(1);

/// Seed salt: decouples the schedule stream from other uses of a seed.
const SALT: u64 = 0x71bc_a05e_ed0b_57ac;

/// Key seed shared by servers and clients (stands in for the paper's
/// well-known client public keys).
const KEY_SEED: u64 = 0x7ea1;

/// How long [`run`] waits for a spawned server to accept connections.
const SPAWN_DEADLINE: Duration = Duration::from_secs(20);

/// Proxy pump read timeout — the cadence at which fault windows and the
/// stop flag are rechecked on an idle connection.
const PUMP_TICK: Duration = Duration::from_millis(20);

/// Campaign configuration: cluster shape plus schedule-drawing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireChaosConfig {
    /// Servers in the cluster.
    pub n: usize,
    /// Fault budget the deployment claims to tolerate.
    pub b: usize,
    /// Concurrent pipelined clients.
    pub clients: usize,
    /// Most faults drawn per schedule.
    pub faults_max: usize,
    /// Most turbulent-phase steps drawn per client.
    pub steps_max: usize,
    /// Fault windows end by this offset (ms from epoch).
    pub turbulence_ms: u64,
    /// Quiet gap after turbulence before calm-phase ops are issued;
    /// must exceed the client's maximum redial backoff.
    pub settle_ms: u64,
    /// Hard wall-clock cap on the whole run (ms from epoch).
    pub deadline_ms: u64,
    /// Partition `b + 1` servers for the entire run: the liveness
    /// oracle is *expected* to flag these seeds.
    pub over_faulted: bool,
}

impl WireChaosConfig {
    /// The standard campaign: faults within budget, both oracles must
    /// hold on every seed.
    pub fn standard(n: usize, b: usize) -> WireChaosConfig {
        WireChaosConfig {
            n,
            b,
            clients: 2,
            faults_max: 5,
            steps_max: 7,
            turbulence_ms: 1800,
            settle_ms: 2400,
            deadline_ms: 12_000,
            over_faulted: false,
        }
    }

    /// The probe campaign: `b + 1` servers partitioned past the
    /// deadline, so calm-phase quorums starve and liveness must flag.
    pub fn over_faulted(n: usize, b: usize) -> WireChaosConfig {
        WireChaosConfig {
            over_faulted: true,
            ..WireChaosConfig::standard(n, b)
        }
    }
}

/// One scheduled fault on a client↔server link (or, for kills, on the
/// server process itself). All times are ms offsets from the epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// Delay every forwarded chunk by `delay_ms` plus deterministic
    /// jitter in `0..=jitter_ms` while the window is open.
    Latency {
        /// Target server link.
        server: usize,
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// Base added delay per chunk.
        delay_ms: u64,
        /// Extra deterministic jitter bound.
        jitter_ms: u64,
    },
    /// Forward at most `bytes_per_tick` bytes per 10 ms tick — the
    /// slow-loris trickle.
    Throttle {
        /// Target server link.
        server: usize,
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// Bytes forwarded per 10 ms tick.
        bytes_per_tick: u64,
    },
    /// Flip one bit in every `every`-th forwarded chunk.
    Corrupt {
        /// Target server link.
        server: usize,
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// Corrupt every k-th chunk.
        every: u64,
    },
    /// Abruptly close every live proxied connection at `at_ms` —
    /// mid-frame if bytes are in flight.
    Reset {
        /// Target server link.
        server: usize,
        /// Reset instant (ms).
        at_ms: u64,
    },
    /// Accept client connections but never bridge them to the server
    /// and never send a byte back — silence, not an error.
    HalfOpen {
        /// Target server link.
        server: usize,
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
    },
    /// Sever existing proxied connections and refuse new ones.
    Partition {
        /// Target server link.
        server: usize,
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
    },
    /// `SIGKILL` the server process at `at_ms`; respawn it at the same
    /// data dir `restart_after_ms` later (WAL recovery on the way up).
    Kill {
        /// Target server process.
        server: usize,
        /// Kill instant (ms).
        at_ms: u64,
        /// Gap before the respawn.
        restart_after_ms: u64,
    },
}

impl WireFault {
    /// The server whose link (or process) this fault targets.
    pub fn server(&self) -> usize {
        match *self {
            WireFault::Latency { server, .. }
            | WireFault::Throttle { server, .. }
            | WireFault::Corrupt { server, .. }
            | WireFault::Reset { server, .. }
            | WireFault::HalfOpen { server, .. }
            | WireFault::Partition { server, .. }
            | WireFault::Kill { server, .. } => server,
        }
    }

    /// Whether the fault makes the server wholly unreachable while
    /// active (and so counts against the budget `b`).
    pub fn is_hard(&self) -> bool {
        matches!(
            self,
            WireFault::HalfOpen { .. } | WireFault::Partition { .. } | WireFault::Kill { .. }
        )
    }
}

/// One step of a client's scripted workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireStep {
    /// Idle for `ms` milliseconds.
    Wait {
        /// Pause length.
        ms: u64,
    },
    /// Single-writer write of `chaos_value(client, data, k)`.
    Write {
        /// Target item.
        data: u64,
        /// Per-(client, item) write counter, for provenance.
        k: u64,
    },
    /// Single-writer read.
    Read {
        /// Target item.
        data: u64,
    },
    /// Multi-writer write of `chaos_value(client, data, k)`.
    MwWrite {
        /// Target item.
        data: u64,
        /// Per-(client, item) write counter, for provenance.
        k: u64,
    },
    /// Multi-writer read.
    MwRead {
        /// Target item.
        data: u64,
    },
}

impl WireStep {
    /// Whether the step issues an operation (and so yields a result).
    pub fn produces_result(&self) -> bool {
        !matches!(self, WireStep::Wait { .. })
    }
}

/// One client's scripted workload. Steps at `calm_from..` are issued
/// only after turbulence plus settle have elapsed, and must succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireScript {
    /// Index of the first calm-phase step.
    pub calm_from: usize,
    /// The steps, in issue order (each is synchronous).
    pub steps: Vec<WireStep>,
}

/// A complete, self-contained wire-chaos schedule: everything [`run`]
/// needs, round-trippable through the text grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSchedule {
    /// The seed it was generated from (identification only).
    pub seed: u64,
    /// Servers.
    pub n: usize,
    /// Fault budget.
    pub b: usize,
    /// Fault windows end by this ms offset.
    pub turbulence_ms: u64,
    /// Quiet gap before calm-phase ops.
    pub settle_ms: u64,
    /// Hard cap on the run.
    pub deadline_ms: u64,
    /// The fault schedule.
    pub faults: Vec<WireFault>,
    /// Per-client workloads.
    pub clients: Vec<WireScript>,
}

/// Which oracle a failing run tripped. Safety dominates liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFailureClass {
    /// Provenance or timestamp-order violation: never acceptable.
    Safety,
    /// A calm-phase operation failed or the run overran its deadline.
    Liveness,
}

/// The judged outcome of one [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireVerdict {
    /// Schedule seed.
    pub seed: u64,
    /// Safety-oracle violations (must always be empty).
    pub safety: Vec<String>,
    /// Liveness-oracle violations.
    pub liveness: Vec<String>,
    /// Operations issued (turbulent and calm).
    pub ops_total: usize,
    /// Operations that completed successfully.
    pub ops_ok: usize,
    /// Explicit `Msg::Shed` overload replies observed by clients.
    pub sheds_seen: u64,
    /// Reads hedged to an extra server past the latency percentile.
    pub hedges: u64,
    /// Operations abandoned at their per-op deadline.
    pub expired: u64,
    /// Client links quarantined as flapping at run end.
    pub quarantined: usize,
}

impl WireVerdict {
    /// No safety violations.
    pub fn safety_ok(&self) -> bool {
        self.safety.is_empty()
    }

    /// No liveness violations.
    pub fn liveness_ok(&self) -> bool {
        self.liveness.is_empty()
    }

    /// Both oracles held.
    pub fn passed(&self) -> bool {
        self.safety_ok() && self.liveness_ok()
    }

    /// The dominating failure class, if any.
    pub fn class(&self) -> Option<WireFailureClass> {
        if !self.safety_ok() {
            Some(WireFailureClass::Safety)
        } else if !self.liveness_ok() {
            Some(WireFailureClass::Liveness)
        } else {
            None
        }
    }
}

/// Knobs for executing a schedule against a real cluster.
#[derive(Debug, Clone)]
pub struct WireRunOptions {
    /// Path to the `sstore-server` binary. Defaults to a sibling of the
    /// current executable (both live in the same target dir).
    pub server_bin: PathBuf,
    /// `--fsync` policy passed to every server; group commit by default
    /// so kills exercise held-ack recovery.
    pub fsync: String,
    /// Per-operation client deadline (the retry budget in wall-clock
    /// form); overdue ops surface as `Unavailable`.
    pub request_timeout_ms: u64,
    /// Hedge reads past this completed-latency percentile.
    pub hedge_percentile: Option<f64>,
}

impl Default for WireRunOptions {
    fn default() -> WireRunOptions {
        let server_bin = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("sstore-server")))
            .unwrap_or_else(|| PathBuf::from("sstore-server"));
        WireRunOptions {
            server_bin,
            fsync: "group-commit:8:500".to_string(),
            request_timeout_ms: 900,
            hedge_percentile: Some(0.95),
        }
    }
}

/// Result of [`shrink`].
#[derive(Debug, Clone)]
pub struct WireShrinkResult {
    /// The minimal still-failing schedule.
    pub schedule: WireSchedule,
    /// The failure class it reproduces.
    pub class: WireFailureClass,
    /// Real cluster runs spent.
    pub runs: usize,
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/// Fisher–Yates over `0..n`, truncated to `count` picks.
fn pick_distinct(rng: &mut StdRng, n: usize, count: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n).collect();
    let len = ids.len();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids.truncate(count.min(n));
    ids
}

/// One member of `pool`, or `None` if it is empty.
fn pick(rng: &mut StdRng, pool: &[u64]) -> Option<u64> {
    if pool.is_empty() {
        return None;
    }
    pool.get(rng.gen_range(0..pool.len())).copied()
}

/// Next `k` for `(client, data)` provenance values.
fn bump(next_k: &mut HashMap<u64, u64>, data: u64) -> u64 {
    let e = next_k.entry(data).or_insert(0);
    let k = *e;
    *e = e.saturating_add(1);
    k
}

/// A fault window inside `[0, turbulence)`, at least 200 ms long when
/// the turbulence budget allows it.
fn window(rng: &mut StdRng, turbulence: u64) -> (u64, u64) {
    let half = (turbulence / 2).max(1);
    let from = rng.gen_range(0..half);
    let lo = (from + 200).min(turbulence);
    let to = if lo >= turbulence {
        turbulence
    } else {
        rng.gen_range(lo..=turbulence)
    };
    (from, to)
}

/// Pure schedule generation: the same `(seed, cfg)` always yields the
/// same schedule, so campaigns are reproducible from the seed alone.
pub fn generate(seed: u64, cfg: &WireChaosConfig) -> WireSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ SALT);
    // Hard faults (half-open, partition, kill) are confined to a fixed
    // set of `b` servers so concurrent hard-faulted servers never
    // exceed the budget the deployment claims to tolerate.
    let hard = pick_distinct(&mut rng, cfg.n, cfg.b);
    let mut faults: Vec<WireFault> = Vec::new();
    let mut killed: HashSet<usize> = HashSet::new();
    let count = rng.gen_range(2..=cfg.faults_max.max(2));
    for _ in 0..count {
        let mut kind = rng.gen_range(0..10u32);
        if kind >= 7 && hard.is_empty() {
            kind = rng.gen_range(0..7u32);
        }
        let soft_server = rng.gen_range(0..cfg.n.max(1));
        let hard_server = pick(
            &mut rng,
            &hard.iter().map(|&s| s as u64).collect::<Vec<u64>>(),
        )
        .map(|s| s as usize)
        .unwrap_or(soft_server);
        let fault = match kind {
            0 | 1 => {
                let (from_ms, to_ms) = window(&mut rng, cfg.turbulence_ms);
                WireFault::Latency {
                    server: soft_server,
                    from_ms,
                    to_ms,
                    delay_ms: rng.gen_range(20..=150),
                    jitter_ms: rng.gen_range(0..=60),
                }
            }
            2 | 3 => {
                let (from_ms, to_ms) = window(&mut rng, cfg.turbulence_ms);
                WireFault::Throttle {
                    server: soft_server,
                    from_ms,
                    to_ms,
                    bytes_per_tick: rng.gen_range(64..=512),
                }
            }
            4 | 5 => {
                let (from_ms, to_ms) = window(&mut rng, cfg.turbulence_ms);
                WireFault::Corrupt {
                    server: soft_server,
                    from_ms,
                    to_ms,
                    every: rng.gen_range(2..=6),
                }
            }
            6 => WireFault::Reset {
                server: soft_server,
                at_ms: rng.gen_range(100..cfg.turbulence_ms.max(101)),
            },
            7 => {
                let (from_ms, to_ms) = window(&mut rng, cfg.turbulence_ms);
                WireFault::HalfOpen {
                    server: hard_server,
                    from_ms,
                    to_ms,
                }
            }
            8 => {
                let (from_ms, to_ms) = window(&mut rng, cfg.turbulence_ms);
                WireFault::Partition {
                    server: hard_server,
                    from_ms,
                    to_ms,
                }
            }
            _ => {
                let half = (cfg.turbulence_ms / 2).max(101);
                let at_ms = rng.gen_range(100..half);
                let restart_after_ms = rng.gen_range(300..=(cfg.turbulence_ms - at_ms).max(301));
                if killed.insert(hard_server) {
                    WireFault::Kill {
                        server: hard_server,
                        at_ms,
                        restart_after_ms,
                    }
                } else {
                    // One kill per server; a second draw degrades to a
                    // partition over the same span.
                    WireFault::Partition {
                        server: hard_server,
                        from_ms: at_ms,
                        to_ms: (at_ms + restart_after_ms).min(cfg.turbulence_ms),
                    }
                }
            }
        };
        faults.push(fault);
    }
    if cfg.over_faulted {
        // The probe: b + 1 servers unreachable for the whole run. Calm
        // quorums that need them cannot form; liveness must flag.
        for s in pick_distinct(&mut rng, cfg.n, (cfg.b + 1).min(cfg.n)) {
            faults.push(WireFault::Partition {
                server: s,
                from_ms: 0,
                to_ms: cfg.deadline_ms,
            });
        }
    }

    let mut clients = Vec::new();
    for c in 0..cfg.clients.max(1) {
        let sw_pool: Vec<u64> = (0..3).map(|i| 10 * (c as u64) + 1 + i).collect();
        let mw_pool: Vec<u64> = vec![101, 102];
        let mut next_k: HashMap<u64, u64> = HashMap::new();
        let mut written_sw: Vec<u64> = Vec::new();
        let mut written_mw: Vec<u64> = Vec::new();
        let mut steps: Vec<WireStep> = Vec::new();
        let count = rng.gen_range(3..=cfg.steps_max.max(3));
        for _ in 0..count {
            let step = match rng.gen_range(0..8u32) {
                0 | 1 => WireStep::Wait {
                    ms: rng.gen_range(40..=240),
                },
                2 | 3 => match pick(&mut rng, &sw_pool) {
                    Some(data) => {
                        written_sw.push(data);
                        WireStep::Write {
                            data,
                            k: bump(&mut next_k, data),
                        }
                    }
                    None => WireStep::Wait { ms: 50 },
                },
                4 => match pick(&mut rng, &written_sw) {
                    Some(data) => WireStep::Read { data },
                    None => match pick(&mut rng, &sw_pool) {
                        Some(data) => {
                            written_sw.push(data);
                            WireStep::Write {
                                data,
                                k: bump(&mut next_k, data),
                            }
                        }
                        None => WireStep::Wait { ms: 50 },
                    },
                },
                5 | 6 => match pick(&mut rng, &mw_pool) {
                    Some(data) => {
                        written_mw.push(data);
                        WireStep::MwWrite {
                            data,
                            k: bump(&mut next_k, data),
                        }
                    }
                    None => WireStep::Wait { ms: 50 },
                },
                _ => match pick(&mut rng, &written_mw) {
                    Some(data) => WireStep::MwRead { data },
                    None => match pick(&mut rng, &mw_pool) {
                        Some(data) => {
                            written_mw.push(data);
                            WireStep::MwWrite {
                                data,
                                k: bump(&mut next_k, data),
                            }
                        }
                        None => WireStep::Wait { ms: 50 },
                    },
                },
            };
            steps.push(step);
        }
        let calm_from = steps.len();
        // The calm block is self-contained: each read follows a calm
        // write of the same item, so it cannot be starved by turbulent
        // writes that never landed.
        if let Some(&data) = sw_pool.first() {
            steps.push(WireStep::Write {
                data,
                k: bump(&mut next_k, data),
            });
            steps.push(WireStep::Read { data });
        }
        if let Some(&data) = mw_pool.first() {
            steps.push(WireStep::MwWrite {
                data,
                k: bump(&mut next_k, data),
            });
            steps.push(WireStep::MwRead { data });
        }
        clients.push(WireScript { calm_from, steps });
    }

    WireSchedule {
        seed,
        n: cfg.n,
        b: cfg.b,
        turbulence_ms: cfg.turbulence_ms,
        settle_ms: cfg.settle_ms,
        deadline_ms: cfg.deadline_ms,
        faults,
        clients,
    }
}

/// Rejects malformed schedules with an explanation rather than letting
/// [`run`] misbehave on them (replay files are hand-editable).
pub fn validate(s: &WireSchedule) -> Result<(), String> {
    if s.n == 0 || s.n > 16 {
        return Err(format!("n={} out of range 1..=16", s.n));
    }
    if s.n < 3 * s.b + 1 {
        return Err(format!("n={} violates n >= 3b+1 for b={}", s.n, s.b));
    }
    if s.clients.is_empty() || s.clients.len() > 16 {
        return Err(format!("{} clients out of range 1..=16", s.clients.len()));
    }
    if s.turbulence_ms < 200 {
        return Err("turbulence < 200 ms".to_string());
    }
    if s.deadline_ms < s.turbulence_ms + s.settle_ms + 500 {
        return Err("deadline leaves no calm window".to_string());
    }
    for f in &s.faults {
        if f.server() >= s.n {
            return Err(format!("fault targets server {} >= n", f.server()));
        }
        match *f {
            WireFault::Latency {
                from_ms,
                to_ms,
                delay_ms,
                ..
            } => {
                if from_ms >= to_ms || to_ms > s.deadline_ms {
                    return Err(format!("bad latency window {from_ms}..{to_ms}"));
                }
                if delay_ms > 10_000 {
                    return Err("latency delay > 10 s".to_string());
                }
            }
            WireFault::Throttle {
                from_ms,
                to_ms,
                bytes_per_tick,
                ..
            } => {
                if from_ms >= to_ms || to_ms > s.deadline_ms {
                    return Err(format!("bad throttle window {from_ms}..{to_ms}"));
                }
                if bytes_per_tick == 0 {
                    return Err("throttle of 0 bytes/tick is a partition".to_string());
                }
            }
            WireFault::Corrupt {
                from_ms,
                to_ms,
                every,
                ..
            } => {
                if from_ms >= to_ms || to_ms > s.deadline_ms {
                    return Err(format!("bad corrupt window {from_ms}..{to_ms}"));
                }
                if every == 0 {
                    return Err("corrupt every=0".to_string());
                }
            }
            WireFault::Reset { at_ms, .. } => {
                if at_ms > s.deadline_ms {
                    return Err("reset past deadline".to_string());
                }
            }
            WireFault::HalfOpen { from_ms, to_ms, .. }
            | WireFault::Partition { from_ms, to_ms, .. } => {
                if from_ms >= to_ms || to_ms > s.deadline_ms {
                    return Err(format!("bad hard-fault window {from_ms}..{to_ms}"));
                }
            }
            WireFault::Kill {
                at_ms,
                restart_after_ms,
                ..
            } => {
                if restart_after_ms == 0 {
                    return Err("kill with restart=0".to_string());
                }
                if at_ms.saturating_add(restart_after_ms) > s.deadline_ms {
                    return Err("kill/restart past deadline".to_string());
                }
            }
        }
    }
    let mut sw_owner: HashMap<u64, usize> = HashMap::new();
    for (c, script) in s.clients.iter().enumerate() {
        if script.calm_from > script.steps.len() {
            return Err(format!("client {c}: calm_from past end of script"));
        }
        let mut written_sw: HashSet<u64> = HashSet::new();
        let mut written_mw: HashSet<u64> = HashSet::new();
        for step in &script.steps {
            match *step {
                WireStep::Write { data, .. } => {
                    match sw_owner.insert(data, c) {
                        Some(owner) if owner != c => {
                            return Err(format!(
                                "single-writer item x{data} written by clients {owner} and {c}"
                            ));
                        }
                        _ => {}
                    }
                    written_sw.insert(data);
                }
                WireStep::Read { data } => {
                    if !written_sw.contains(&data) {
                        return Err(format!("client {c} reads x{data} before writing it"));
                    }
                }
                WireStep::MwWrite { data, .. } => {
                    written_mw.insert(data);
                }
                WireStep::MwRead { data } => {
                    if !written_mw.contains(&data) {
                        return Err(format!("client {c} mw-reads x{data} before mw-writing it"));
                    }
                }
                WireStep::Wait { .. } => {}
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Text grammar (replay files)
// ---------------------------------------------------------------------

/// Grammar header; bump the version when the format changes shape.
const HEADER: &str = "sstore-wirechaos-schedule v1";

impl WireSchedule {
    /// Serializes to the versioned replay grammar. `from_text` of the
    /// result reproduces `self` exactly (round-trip identity).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "cluster n={} b={}", self.n, self.b);
        let _ = writeln!(
            out,
            "phases turbulence={} settle={} deadline={}",
            self.turbulence_ms, self.settle_ms, self.deadline_ms
        );
        for f in &self.faults {
            match *f {
                WireFault::Latency {
                    server,
                    from_ms,
                    to_ms,
                    delay_ms,
                    jitter_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "fault latency server={server} from={from_ms} to={to_ms} \
                         delay={delay_ms} jitter={jitter_ms}"
                    );
                }
                WireFault::Throttle {
                    server,
                    from_ms,
                    to_ms,
                    bytes_per_tick,
                } => {
                    let _ = writeln!(
                        out,
                        "fault throttle server={server} from={from_ms} to={to_ms} \
                         bytes={bytes_per_tick}"
                    );
                }
                WireFault::Corrupt {
                    server,
                    from_ms,
                    to_ms,
                    every,
                } => {
                    let _ = writeln!(
                        out,
                        "fault corrupt server={server} from={from_ms} to={to_ms} every={every}"
                    );
                }
                WireFault::Reset { server, at_ms } => {
                    let _ = writeln!(out, "fault reset server={server} at={at_ms}");
                }
                WireFault::HalfOpen {
                    server,
                    from_ms,
                    to_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "fault half-open server={server} from={from_ms} to={to_ms}"
                    );
                }
                WireFault::Partition {
                    server,
                    from_ms,
                    to_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "fault partition server={server} from={from_ms} to={to_ms}"
                    );
                }
                WireFault::Kill {
                    server,
                    at_ms,
                    restart_after_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "fault kill server={server} at={at_ms} restart={restart_after_ms}"
                    );
                }
            }
        }
        for (c, script) in self.clients.iter().enumerate() {
            let _ = writeln!(out, "client {c} calm_from={}", script.calm_from);
            for step in &script.steps {
                match *step {
                    WireStep::Wait { ms } => {
                        let _ = writeln!(out, "  step wait ms={ms}");
                    }
                    WireStep::Write { data, k } => {
                        let _ = writeln!(out, "  step write data={data} k={k}");
                    }
                    WireStep::Read { data } => {
                        let _ = writeln!(out, "  step read data={data}");
                    }
                    WireStep::MwWrite { data, k } => {
                        let _ = writeln!(out, "  step mw-write data={data} k={k}");
                    }
                    WireStep::MwRead { data } => {
                        let _ = writeln!(out, "  step mw-read data={data}");
                    }
                }
            }
            let _ = writeln!(out, "end");
        }
        out
    }

    /// Parses the replay grammar, rejecting malformed input with a
    /// line-anchored explanation (never a panic — replay files arrive
    /// from disk and hand edits).
    pub fn from_text(text: &str) -> Result<WireSchedule, String> {
        fn kv(tok: Option<&&str>, key: &str) -> Result<u64, String> {
            let tok = tok.ok_or_else(|| format!("missing {key}=N"))?;
            let rest = tok
                .strip_prefix(key)
                .and_then(|r| r.strip_prefix('='))
                .ok_or_else(|| format!("expected {key}=N, got {tok}"))?;
            rest.parse::<u64>().map_err(|e| format!("bad {key}: {e}"))
        }
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or_else(|| "empty schedule".to_string())?;
        if header != HEADER {
            return Err(format!("bad header {header:?} (want {HEADER:?})"));
        }
        let mut seed: Option<u64> = None;
        let mut n: Option<u64> = None;
        let mut b: Option<u64> = None;
        let mut phases: Option<(u64, u64, u64)> = None;
        let mut faults: Vec<WireFault> = Vec::new();
        let mut clients: Vec<WireScript> = Vec::new();
        while let Some(line) = lines.next() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.first().copied() {
                Some("seed") => {
                    let v = toks
                        .get(1)
                        .ok_or_else(|| "seed needs a value".to_string())?
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed: {e}"))?;
                    seed = Some(v);
                }
                Some("cluster") => {
                    n = Some(kv(toks.get(1), "n")?);
                    b = Some(kv(toks.get(2), "b")?);
                }
                Some("phases") => {
                    phases = Some((
                        kv(toks.get(1), "turbulence")?,
                        kv(toks.get(2), "settle")?,
                        kv(toks.get(3), "deadline")?,
                    ));
                }
                Some("fault") => {
                    let server = kv(toks.get(2), "server")? as usize;
                    let fault = match toks.get(1).copied() {
                        Some("latency") => WireFault::Latency {
                            server,
                            from_ms: kv(toks.get(3), "from")?,
                            to_ms: kv(toks.get(4), "to")?,
                            delay_ms: kv(toks.get(5), "delay")?,
                            jitter_ms: kv(toks.get(6), "jitter")?,
                        },
                        Some("throttle") => WireFault::Throttle {
                            server,
                            from_ms: kv(toks.get(3), "from")?,
                            to_ms: kv(toks.get(4), "to")?,
                            bytes_per_tick: kv(toks.get(5), "bytes")?,
                        },
                        Some("corrupt") => WireFault::Corrupt {
                            server,
                            from_ms: kv(toks.get(3), "from")?,
                            to_ms: kv(toks.get(4), "to")?,
                            every: kv(toks.get(5), "every")?,
                        },
                        Some("reset") => WireFault::Reset {
                            server,
                            at_ms: kv(toks.get(3), "at")?,
                        },
                        Some("half-open") => WireFault::HalfOpen {
                            server,
                            from_ms: kv(toks.get(3), "from")?,
                            to_ms: kv(toks.get(4), "to")?,
                        },
                        Some("partition") => WireFault::Partition {
                            server,
                            from_ms: kv(toks.get(3), "from")?,
                            to_ms: kv(toks.get(4), "to")?,
                        },
                        Some("kill") => WireFault::Kill {
                            server,
                            at_ms: kv(toks.get(3), "at")?,
                            restart_after_ms: kv(toks.get(4), "restart")?,
                        },
                        other => return Err(format!("unknown fault kind {other:?}")),
                    };
                    faults.push(fault);
                }
                Some("client") => {
                    let id = toks
                        .get(1)
                        .ok_or_else(|| "client needs an id".to_string())?
                        .parse::<usize>()
                        .map_err(|e| format!("bad client id: {e}"))?;
                    if id != clients.len() {
                        return Err(format!(
                            "client blocks must be in order: got {id}, expected {}",
                            clients.len()
                        ));
                    }
                    let calm_from = kv(toks.get(2), "calm_from")? as usize;
                    let mut steps: Vec<WireStep> = Vec::new();
                    loop {
                        let line = lines
                            .next()
                            .ok_or_else(|| format!("client {id}: missing end"))?;
                        if line == "end" {
                            break;
                        }
                        let st: Vec<&str> = line.split_whitespace().collect();
                        if st.first().copied() != Some("step") {
                            return Err(format!("client {id}: expected step or end, got {line:?}"));
                        }
                        let step = match st.get(1).copied() {
                            Some("wait") => WireStep::Wait {
                                ms: kv(st.get(2), "ms")?,
                            },
                            Some("write") => WireStep::Write {
                                data: kv(st.get(2), "data")?,
                                k: kv(st.get(3), "k")?,
                            },
                            Some("read") => WireStep::Read {
                                data: kv(st.get(2), "data")?,
                            },
                            Some("mw-write") => WireStep::MwWrite {
                                data: kv(st.get(2), "data")?,
                                k: kv(st.get(3), "k")?,
                            },
                            Some("mw-read") => WireStep::MwRead {
                                data: kv(st.get(2), "data")?,
                            },
                            other => return Err(format!("unknown step kind {other:?}")),
                        };
                        steps.push(step);
                    }
                    clients.push(WireScript { calm_from, steps });
                }
                other => return Err(format!("unknown directive {other:?}")),
            }
        }
        let (turbulence_ms, settle_ms, deadline_ms) =
            phases.ok_or_else(|| "missing phases line".to_string())?;
        let schedule = WireSchedule {
            seed: seed.ok_or_else(|| "missing seed line".to_string())?,
            n: n.ok_or_else(|| "missing cluster line".to_string())? as usize,
            b: b.ok_or_else(|| "missing cluster line".to_string())? as usize,
            turbulence_ms,
            settle_ms,
            deadline_ms,
            faults,
            clients,
        };
        validate(&schedule)?;
        Ok(schedule)
    }
}

// ---------------------------------------------------------------------
// Fault plan resolution + the proxy
// ---------------------------------------------------------------------

/// A schedule's faults resolved down to one server link, in the form
/// the proxy pump checks per forwarded chunk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct LinkPlan {
    /// `(from, to, delay, jitter)` windows.
    latency: Vec<(u64, u64, u64, u64)>,
    /// `(from, to, bytes_per_tick)` windows.
    throttle: Vec<(u64, u64, u64)>,
    /// `(from, to, every)` windows.
    corrupt: Vec<(u64, u64, u64)>,
    /// Reset instants.
    resets: Vec<u64>,
    /// Half-open windows.
    half_open: Vec<(u64, u64)>,
    /// Partition windows.
    partition: Vec<(u64, u64)>,
}

impl LinkPlan {
    fn for_server(s: &WireSchedule, server: usize) -> LinkPlan {
        let mut plan = LinkPlan::default();
        for f in s.faults.iter().filter(|f| f.server() == server) {
            match *f {
                WireFault::Latency {
                    from_ms,
                    to_ms,
                    delay_ms,
                    jitter_ms,
                    ..
                } => plan.latency.push((from_ms, to_ms, delay_ms, jitter_ms)),
                WireFault::Throttle {
                    from_ms,
                    to_ms,
                    bytes_per_tick,
                    ..
                } => plan.throttle.push((from_ms, to_ms, bytes_per_tick)),
                WireFault::Corrupt {
                    from_ms,
                    to_ms,
                    every,
                    ..
                } => plan.corrupt.push((from_ms, to_ms, every)),
                WireFault::Reset { at_ms, .. } => plan.resets.push(at_ms),
                WireFault::HalfOpen { from_ms, to_ms, .. } => plan.half_open.push((from_ms, to_ms)),
                WireFault::Partition { from_ms, to_ms, .. } => {
                    plan.partition.push((from_ms, to_ms))
                }
                WireFault::Kill { .. } => {}
            }
        }
        plan
    }

    fn latency_at(&self, now: u64) -> Option<(u64, u64)> {
        self.latency
            .iter()
            .find(|&&(f, t, _, _)| f <= now && now < t)
            .map(|&(_, _, d, j)| (d, j))
    }

    fn throttle_at(&self, now: u64) -> Option<u64> {
        self.throttle
            .iter()
            .find(|&&(f, t, _)| f <= now && now < t)
            .map(|&(_, _, b)| b)
    }

    fn corrupt_at(&self, now: u64) -> Option<u64> {
        self.corrupt
            .iter()
            .find(|&&(f, t, _)| f <= now && now < t)
            .map(|&(_, _, e)| e)
    }

    /// Whether a reset instant falls in `(since, now]` — connections
    /// opened before the instant die when time passes it.
    fn reset_between(&self, since: u64, now: u64) -> bool {
        self.resets.iter().any(|&at| since < at && at <= now)
    }

    fn half_open_at(&self, now: u64) -> bool {
        self.half_open.iter().any(|&(f, t)| f <= now && now < t)
    }

    fn partitioned_at(&self, now: u64) -> bool {
        self.partition.iter().any(|&(f, t)| f <= now && now < t)
    }
}

/// The shared fault epoch: unset while the cluster boots and clients
/// connect, so no fault window is active before the workload starts.
#[derive(Clone, Default)]
struct Epoch(Arc<OnceLock<Instant>>);

impl Epoch {
    fn start(&self) -> Instant {
        let _ = self.0.set(Instant::now());
        self.0.get().copied().unwrap_or_else(Instant::now)
    }

    /// Milliseconds since the epoch, or `None` before it starts.
    fn now_ms(&self) -> Option<u64> {
        self.0
            .get()
            .map(|t| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX))
    }
}

/// Deterministic per-chunk noise for corruption bit positions and
/// latency jitter (SplitMix64 step keyed by chunk number).
fn chunk_noise(seed: u64, chunk_no: u64) -> u64 {
    let mut z = seed
        .wrapping_add(chunk_no.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One direction of a proxied connection: read from `src`, apply the
/// active fault windows, forward to `dst`. Exits on EOF, error, stop,
/// an active partition, or a reset instant crossing.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: Arc<LinkPlan>,
    epoch: Epoch,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    let mut buf = vec![0u8; 2048];
    let mut since = epoch.now_ms().unwrap_or(0);
    let mut chunk_no: u64 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Before the epoch starts (boot + connect) every fault window is
        // inactive — the schedule's clock has not begun ticking.
        let now = epoch.now_ms();
        if let Some(now) = now {
            if plan.partitioned_at(now) || plan.reset_between(since, now) {
                break;
            }
            since = since.max(now);
        }
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(len) => {
                let Some(chunk) = buf.get_mut(..len) else {
                    break;
                };
                chunk_no = chunk_no.wrapping_add(1);
                if let Some(every) = now.and_then(|t| plan.corrupt_at(t)) {
                    if every > 0 && chunk_no.is_multiple_of(every) {
                        let bit = (chunk_noise(seed, chunk_no) as usize) % (len * 8);
                        if let Some(byte) = chunk.get_mut(bit / 8) {
                            *byte ^= 1 << (bit % 8);
                        }
                    }
                }
                if let Some((delay, jitter)) = now.and_then(|t| plan.latency_at(t)) {
                    let extra = if jitter > 0 {
                        chunk_noise(seed ^ 0x1a7e, chunk_no) % (jitter + 1)
                    } else {
                        0
                    };
                    thread::sleep(Duration::from_millis(delay.saturating_add(extra)));
                }
                if let Some(per_tick) = now.and_then(|t| plan.throttle_at(t)) {
                    let step = usize::try_from(per_tick.max(1)).unwrap_or(usize::MAX);
                    let mut off = 0;
                    let mut dead = false;
                    while off < len {
                        if stop.load(Ordering::Relaxed) {
                            dead = true;
                            break;
                        }
                        let end = off.saturating_add(step).min(len);
                        let Some(slice) = chunk.get(off..end) else {
                            dead = true;
                            break;
                        };
                        if dst.write_all(slice).is_err() {
                            dead = true;
                            break;
                        }
                        off = end;
                        thread::sleep(Duration::from_millis(10));
                    }
                    if dead {
                        break;
                    }
                } else if dst.write_all(chunk).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// The per-server proxy accept loop: bridges client connections to the
/// real server through the link's fault plan.
fn proxy_loop(
    listener: TcpListener,
    target: SocketAddr,
    plan: Arc<LinkPlan>,
    epoch: Epoch,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conn_no: u64 = 0;
    while !stop.load(Ordering::Relaxed) {
        let (sock, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => break,
        };
        conn_no = conn_no.wrapping_add(1);
        let now = epoch.now_ms();
        if now.is_some_and(|t| plan.partitioned_at(t)) {
            // Refusal-as-silence: the dial succeeded against the proxy,
            // but the link drops it on the floor immediately.
            drop(sock);
            continue;
        }
        if now.is_some_and(|t| plan.half_open_at(t)) {
            // Accept, then silence: hold the socket un-bridged until
            // the window closes, then sever it.
            let plan = Arc::clone(&plan);
            let epoch = epoch.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !epoch.now_ms().is_some_and(|t| plan.half_open_at(t)) {
                        break;
                    }
                    thread::sleep(PUMP_TICK);
                }
                let _ = sock.shutdown(Shutdown::Both);
            });
            continue;
        }
        let Ok(upstream) = TcpStream::connect_timeout(&target, Duration::from_secs(2)) else {
            drop(sock);
            continue;
        };
        let _ = sock.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        let _ = sock.set_read_timeout(Some(PUMP_TICK));
        let _ = upstream.set_read_timeout(Some(PUMP_TICK));
        let (Ok(sock2), Ok(upstream2)) = (sock.try_clone(), upstream.try_clone()) else {
            continue;
        };
        let conn_seed = seed ^ conn_no.wrapping_mul(0xd1b5_4a32_d192_ed03);
        {
            let plan = Arc::clone(&plan);
            let epoch = epoch.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || pump(sock, upstream, plan, epoch, stop, conn_seed));
        }
        {
            let plan = Arc::clone(&plan);
            let epoch = epoch.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || pump(upstream2, sock2, plan, epoch, stop, conn_seed ^ 0xffff));
        }
    }
}

// ---------------------------------------------------------------------
// Server process management
// ---------------------------------------------------------------------

fn peers_arg(addrs: &[SocketAddr]) -> String {
    addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn spawn_server(
    opts: &WireRunOptions,
    id: usize,
    b: usize,
    addrs: &[SocketAddr],
    data_dir: &std::path::Path,
    clients: usize,
) -> Result<Child, String> {
    let listen = addrs
        .get(id)
        .ok_or_else(|| format!("no address for server {id}"))?;
    Command::new(&opts.server_bin)
        .args([
            "--id",
            &id.to_string(),
            "--b",
            &b.to_string(),
            "--listen",
            &listen.to_string(),
            "--peers",
            &peers_arg(addrs),
            "--clients",
            &clients.to_string(),
            "--key-seed",
            &format!("{KEY_SEED:#x}"),
            "--data-dir",
            &data_dir.display().to_string(),
            "--fsync",
            &opts.fsync,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", opts.server_bin.display()))
}

/// Spawns server `id` and waits until it accepts TCP connections,
/// respawning if the process dies first (e.g. a lost bind race).
fn spawn_until_up(
    opts: &WireRunOptions,
    id: usize,
    b: usize,
    addrs: &[SocketAddr],
    data_dir: &std::path::Path,
    clients: usize,
) -> Result<Child, String> {
    let deadline = Instant::now() + SPAWN_DEADLINE;
    let addr = *addrs
        .get(id)
        .ok_or_else(|| format!("no address for server {id}"))?;
    let mut child = spawn_server(opts, id, b, addrs, data_dir, clients)?;
    loop {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok() {
            return Ok(child);
        }
        match child.try_wait() {
            Ok(Some(_)) => child = spawn_server(opts, id, b, addrs, data_dir, clients)?,
            Ok(None) => {}
            Err(e) => return Err(format!("try_wait server {id}: {e}")),
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("server {id} never came up on {addr}"));
        }
        thread::sleep(Duration::from_millis(50));
    }
}

fn sigkill(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

// ---------------------------------------------------------------------
// Workload driver + oracles
// ---------------------------------------------------------------------

/// What one executed operation looked like from the client's side.
#[derive(Debug, Clone)]
struct OpRecord {
    client: usize,
    step: usize,
    calm: bool,
    kind: &'static str,
    data: u64,
    ok: bool,
    /// `(ts, value)` for successful reads, fed to the safety oracle.
    read: Option<(Timestamp, Vec<u8>)>,
    detail: String,
}

/// Everything one client thread brings home.
#[derive(Debug, Default)]
struct ClientOutcome {
    records: Vec<OpRecord>,
    sheds: u64,
    hedges: u64,
    expired: u64,
    quarantined: usize,
    not_idle: bool,
}

/// Submits one op and pumps until its completion arrives; `None` if it
/// neither completes nor expires within `cap` (a harness bug, counted
/// as a liveness violation).
fn run_op(client: &mut PipeClient, op: ClientOp, cap: Duration) -> Option<OpResult> {
    let id = client.submit(op);
    client.flush();
    let hard = Instant::now() + cap;
    loop {
        let slice = hard.min(Instant::now() + Duration::from_millis(50));
        for done in client.pump_until(slice) {
            if done.op == id {
                return Some(done);
            }
        }
        if Instant::now() >= hard {
            return None;
        }
    }
}

fn sleep_until(at: Instant) {
    loop {
        let now = Instant::now();
        if now >= at {
            return;
        }
        thread::sleep((at - now).min(Duration::from_millis(50)));
    }
}

/// Runs one client's script to completion; each step is synchronous so
/// the per-client read order is the submission order (what the
/// monotonicity oracle assumes).
fn drive_client(
    c: usize,
    mut client: PipeClient,
    sched: Arc<WireSchedule>,
    calm_at: Instant,
    deadline_at: Instant,
    op_cap: Duration,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let Some(script) = sched.clients.get(c).cloned() else {
        return out;
    };
    for (i, step) in script.steps.iter().enumerate() {
        let calm = i >= script.calm_from;
        if i == script.calm_from {
            sleep_until(calm_at);
        }
        let (kind, op, data): (&'static str, ClientOp, u64) = match *step {
            WireStep::Wait { ms } => {
                if !calm {
                    thread::sleep(Duration::from_millis(ms));
                }
                continue;
            }
            WireStep::Write { data, k } => (
                "write",
                ClientOp::Write {
                    data: DataId(data),
                    group: GROUP,
                    consistency: Consistency::Mrc,
                    value: chaos_value(c, data, k),
                },
                data,
            ),
            WireStep::Read { data } => (
                "read",
                ClientOp::Read {
                    data: DataId(data),
                    group: GROUP,
                    consistency: Consistency::Mrc,
                },
                data,
            ),
            WireStep::MwWrite { data, k } => (
                "mw-write",
                ClientOp::MwWrite {
                    data: DataId(data),
                    group: GROUP,
                    value: chaos_value(c, data, k),
                },
                data,
            ),
            WireStep::MwRead { data } => (
                "mw-read",
                ClientOp::MwRead {
                    data: DataId(data),
                    group: GROUP,
                    consistency: Consistency::Mrc,
                },
                data,
            ),
        };
        let attempts = if calm { 3 } else { 1 };
        let mut recorded = false;
        for attempt in 0..attempts {
            if calm && Instant::now() >= deadline_at {
                out.records.push(OpRecord {
                    client: c,
                    step: i,
                    calm,
                    kind,
                    data,
                    ok: false,
                    read: None,
                    detail: "deadline exhausted before issue".to_string(),
                });
                recorded = true;
                break;
            }
            match run_op(&mut client, op.clone(), op_cap) {
                Some(result) => {
                    let ok = result.outcome.is_ok();
                    let read = match &result.outcome {
                        Outcome::ReadOk { ts, value, .. } => Some((*ts, value.clone())),
                        _ => None,
                    };
                    if ok || !calm || attempt + 1 == attempts {
                        out.records.push(OpRecord {
                            client: c,
                            step: i,
                            calm,
                            kind,
                            data,
                            ok,
                            read,
                            detail: format!("{:?}", result.outcome),
                        });
                        recorded = true;
                        break;
                    }
                    thread::sleep(Duration::from_millis(250));
                }
                None => {
                    out.records.push(OpRecord {
                        client: c,
                        step: i,
                        calm,
                        kind,
                        data,
                        ok: false,
                        read: None,
                        detail: "no completion by harness cap (op lost)".to_string(),
                    });
                    recorded = true;
                    break;
                }
            }
        }
        if !recorded {
            out.records.push(OpRecord {
                client: c,
                step: i,
                calm,
                kind,
                data,
                ok: false,
                read: None,
                detail: "retries exhausted".to_string(),
            });
        }
    }
    out.sheds = client.sheds_seen();
    out.hedges = client.hedges();
    out.expired = client.expired();
    out.quarantined = client.quarantined_links();
    out.not_idle = client.inflight() > 0;
    out
}

/// Judges observed histories: provenance + per-client timestamp
/// monotonicity (safety), calm-phase success (liveness). Pure, so the
/// oracles are unit-testable without a cluster.
fn evaluate(sched: &WireSchedule, records: &[OpRecord]) -> (Vec<String>, Vec<String>) {
    let mut safety = Vec::new();
    let mut liveness = Vec::new();
    let legit: HashSet<(usize, u64, u64)> = sched
        .clients
        .iter()
        .enumerate()
        .flat_map(|(c, script)| {
            script.steps.iter().filter_map(move |s| match *s {
                WireStep::Write { data, k } | WireStep::MwWrite { data, k } => Some((c, data, k)),
                _ => None,
            })
        })
        .collect();
    let mut last: HashMap<(usize, u64), Timestamp> = HashMap::new();
    for r in records {
        if let Some((ts, value)) = &r.read {
            match parse_chaos_value(value) {
                None => safety.push(format!(
                    "client {} step {} {} x{}: value does not parse as a chaos write",
                    r.client, r.step, r.kind, r.data
                )),
                Some((wc, wd, wk)) => {
                    if wd != r.data {
                        safety.push(format!(
                            "client {} step {} read x{} but value claims x{wd}",
                            r.client, r.step, r.data
                        ));
                    } else if !legit.contains(&(wc, wd, wk)) {
                        safety.push(format!(
                            "client {} step {} x{}: value (c{wc},d{wd},k{wk}) was never written",
                            r.client, r.step, r.data
                        ));
                    }
                }
            }
            match last.get(&(r.client, r.data)) {
                Some(prev) => match ts.compare(prev) {
                    TsOrder::Less => safety.push(format!(
                        "client {} step {} x{}: timestamp regressed ({ts:?} < {prev:?})",
                        r.client, r.step, r.data
                    )),
                    TsOrder::FaultyWriter => safety.push(format!(
                        "client {} step {} x{}: two values under one timestamp (faulty writer)",
                        r.client, r.step, r.data
                    )),
                    TsOrder::Incomparable => safety.push(format!(
                        "client {} step {} x{}: incomparable timestamp families",
                        r.client, r.step, r.data
                    )),
                    TsOrder::Equal | TsOrder::Greater => {
                        last.insert((r.client, r.data), *ts);
                    }
                },
                None => {
                    last.insert((r.client, r.data), *ts);
                }
            }
        }
        if r.calm && !r.ok {
            liveness.push(format!(
                "calm {} on x{} by client {} failed: {}",
                r.kind, r.data, r.client, r.detail
            ));
        }
    }
    (safety, liveness)
}

// ---------------------------------------------------------------------
// run
// ---------------------------------------------------------------------

/// Distinguishes temp dirs across runs of the same seed in one process
/// (shrink re-runs a schedule many times; recovery from a previous
/// run's WAL would poison the oracle).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn reserve_addrs(count: usize) -> Result<Vec<SocketAddr>, String> {
    let listeners: Result<Vec<TcpListener>, String> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind ephemeral: {e}")))
        .collect();
    listeners?
        .iter()
        .map(|l| l.local_addr().map_err(|e| format!("local addr: {e}")))
        .collect()
}

/// Executes `schedule` against a freshly spawned real cluster behind
/// fault-injecting proxies and judges the observed history.
///
/// # Errors
///
/// Environment failures (cannot spawn servers, clients cannot even
/// connect through clean proxies, worker panics) — *not* oracle
/// verdicts, which land in the returned [`WireVerdict`].
pub fn run(schedule: &WireSchedule, opts: &WireRunOptions) -> Result<WireVerdict, String> {
    validate(schedule)?;
    let run_id = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let base = std::env::temp_dir().join(format!(
        "sstore-wirechaos-{}-{}-{run_id}",
        std::process::id(),
        schedule.seed
    ));
    let n = schedule.n;
    let clients = schedule.clients.len();
    let server_addrs = reserve_addrs(n)?;
    // Proxy listeners are retained (not re-bound), so there is no race
    // on their ports.
    let proxy_listeners: Result<Vec<TcpListener>, String> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind proxy: {e}")))
        .collect();
    let proxy_listeners = proxy_listeners?;
    let proxy_addrs: Result<Vec<SocketAddr>, String> = proxy_listeners
        .iter()
        .map(|l| l.local_addr().map_err(|e| format!("proxy addr: {e}")))
        .collect();
    let proxy_addrs = proxy_addrs?;

    let stop = Arc::new(AtomicBool::new(false));
    let epoch = Epoch::default();
    let children: Arc<Mutex<Vec<Option<Child>>>> = Arc::new(Mutex::new(Vec::new()));

    let cleanup = |children: &Arc<Mutex<Vec<Option<Child>>>>, stop: &Arc<AtomicBool>| {
        stop.store(true, Ordering::Relaxed);
        if let Ok(mut kids) = children.lock() {
            for child in kids.iter_mut().filter_map(Option::as_mut) {
                sigkill(child);
            }
            kids.clear();
        }
        let _ = std::fs::remove_dir_all(&base);
    };

    // 1. Spawn the real servers and wait for them to accept.
    for id in 0..n {
        let dir = base.join(format!("s{id}"));
        match spawn_until_up(opts, id, schedule.b, &server_addrs, &dir, clients) {
            Ok(child) => {
                if let Ok(mut kids) = children.lock() {
                    kids.push(Some(child));
                }
            }
            Err(e) => {
                cleanup(&children, &stop);
                return Err(e);
            }
        }
    }

    // 2. Start the fault-injecting proxies (pass-through until the
    //    epoch starts).
    let mut proxy_handles = Vec::new();
    for (id, listener) in proxy_listeners.into_iter().enumerate() {
        let Some(&target) = server_addrs.get(id) else {
            cleanup(&children, &stop);
            return Err(format!("no server address for proxy {id}"));
        };
        let plan = Arc::new(LinkPlan::for_server(schedule, id));
        let epoch = epoch.clone();
        let stop = Arc::clone(&stop);
        let seed = schedule.seed ^ (id as u64).wrapping_mul(0x9e37_79b9);
        proxy_handles.push(thread::spawn(move || {
            proxy_loop(listener, target, plan, epoch, stop, seed)
        }));
    }

    // 3. Connect every client through the (still clean) proxies.
    let cluster = NetCluster::connect_with(
        proxy_addrs,
        schedule.b,
        u16::try_from(clients).unwrap_or(u16::MAX),
        KEY_SEED,
        ClientConfig {
            verify_multi_writer_reads: true,
            ..ClientConfig::default()
        },
        NetClientConfig {
            request_timeout: Duration::from_millis(opts.request_timeout_ms),
            hedge_percentile: opts.hedge_percentile,
            ..NetClientConfig::default()
        },
    );
    let mut pipes: Vec<PipeClient> = Vec::new();
    for c in 0..clients {
        let mut client = cluster.pipe_client(u16::try_from(c).unwrap_or(u16::MAX));
        let connect_deadline = Instant::now() + Duration::from_secs(15);
        let mut connected = false;
        while Instant::now() < connect_deadline {
            let result = run_op(
                &mut client,
                ClientOp::Connect {
                    group: GROUP,
                    recover: false,
                },
                Duration::from_secs(3),
            );
            if result.is_some_and(|r| r.outcome.is_ok()) {
                connected = true;
                break;
            }
            thread::sleep(Duration::from_millis(100));
        }
        if !connected {
            cleanup(&children, &stop);
            return Err(format!(
                "client {c} could not connect through clean proxies"
            ));
        }
        pipes.push(client);
    }

    // 4. Start the clock; faults are now live.
    let epoch_at = epoch.start();
    let calm_at = epoch_at + Duration::from_millis(schedule.turbulence_ms + schedule.settle_ms);
    let deadline_at = epoch_at + Duration::from_millis(schedule.deadline_ms);
    let op_cap = Duration::from_millis(opts.request_timeout_ms + 1500);

    // 5. Kill controller: SIGKILL at `at_ms`, respawn after the gap.
    let mut kills: Vec<(usize, u64, u64)> = schedule
        .faults
        .iter()
        .filter_map(|f| match *f {
            WireFault::Kill {
                server,
                at_ms,
                restart_after_ms,
            } => Some((server, at_ms, restart_after_ms)),
            _ => None,
        })
        .collect();
    kills.sort_by_key(|&(_, at, _)| at);
    let controller = if kills.is_empty() {
        None
    } else {
        let children = Arc::clone(&children);
        let stop = Arc::clone(&stop);
        let opts = opts.clone();
        let server_addrs = server_addrs.clone();
        let base = base.clone();
        let b = schedule.b;
        Some(thread::spawn(move || -> Vec<String> {
            let mut errors = Vec::new();
            for (server, at_ms, restart_after_ms) in kills {
                sleep_until(epoch_at + Duration::from_millis(at_ms));
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let mut taken = None;
                if let Ok(mut kids) = children.lock() {
                    taken = kids.get_mut(server).and_then(Option::take);
                }
                if let Some(mut child) = taken {
                    sigkill(&mut child);
                }
                sleep_until(epoch_at + Duration::from_millis(at_ms + restart_after_ms));
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let dir = base.join(format!("s{server}"));
                match spawn_until_up(&opts, server, b, &server_addrs, &dir, clients) {
                    Ok(child) => {
                        if let Ok(mut kids) = children.lock() {
                            if let Some(slot) = kids.get_mut(server) {
                                *slot = Some(child);
                            }
                        }
                    }
                    Err(e) => errors.push(format!("restart of server {server}: {e}")),
                }
            }
            errors
        }))
    };

    // 6. Drive every client script on its own thread.
    let sched = Arc::new(schedule.clone());
    let mut workers = Vec::new();
    for (c, client) in pipes.into_iter().enumerate() {
        let sched = Arc::clone(&sched);
        workers.push(thread::spawn(move || {
            drive_client(c, client, sched, calm_at, deadline_at, op_cap)
        }));
    }
    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut worker_panic = false;
    for w in workers {
        match w.join() {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => worker_panic = true,
        }
    }

    // 7. Teardown: controller, proxies, servers, data dirs.
    let controller_errors = match controller {
        Some(handle) => {
            stop.store(true, Ordering::Relaxed);
            handle.join().unwrap_or_default()
        }
        None => Vec::new(),
    };
    cleanup(&children, &stop);
    for handle in proxy_handles {
        let _ = handle.join();
    }
    if worker_panic {
        return Err("a client worker thread panicked".to_string());
    }
    if let Some(e) = controller_errors.first() {
        return Err(e.clone());
    }

    // 8. Judge.
    let mut records: Vec<OpRecord> = Vec::new();
    let mut sheds_seen = 0u64;
    let mut hedges = 0u64;
    let mut expired = 0u64;
    let mut quarantined = 0usize;
    let mut liveness_extra: Vec<String> = Vec::new();
    for (c, outcome) in outcomes.into_iter().enumerate() {
        sheds_seen = sheds_seen.saturating_add(outcome.sheds);
        hedges = hedges.saturating_add(outcome.hedges);
        expired = expired.saturating_add(outcome.expired);
        quarantined = quarantined.saturating_add(outcome.quarantined);
        if outcome.not_idle {
            liveness_extra.push(format!("client {c} not idle at run end"));
        }
        records.extend(outcome.records);
    }
    let (safety, mut liveness) = evaluate(schedule, &records);
    liveness.extend(liveness_extra);
    let ops_total = records.len();
    let ops_ok = records.iter().filter(|r| r.ok).count();
    Ok(WireVerdict {
        seed: schedule.seed,
        safety,
        liveness,
        ops_total,
        ops_ok,
        sheds_seen,
        hedges,
        expired,
        quarantined,
    })
}

// ---------------------------------------------------------------------
// Shrink
// ---------------------------------------------------------------------

/// One candidate simplification of a schedule.
#[derive(Debug, Clone, Copy)]
enum WireEdit {
    /// Drop fault `i`.
    RemoveFault(usize),
    /// Drop client `c`'s turbulent prefix, keeping only the calm block.
    KeepCalmOnly(usize),
    /// Drop client `c`'s script entirely.
    ClearClient(usize),
}

fn apply_edit(s: &WireSchedule, edit: WireEdit) -> Option<WireSchedule> {
    let mut out = s.clone();
    match edit {
        WireEdit::RemoveFault(i) => {
            if i >= out.faults.len() {
                return None;
            }
            out.faults.remove(i);
        }
        WireEdit::KeepCalmOnly(c) => {
            let script = out.clients.get_mut(c)?;
            if script.calm_from == 0 {
                return None;
            }
            script.steps.drain(..script.calm_from);
            script.calm_from = 0;
        }
        WireEdit::ClearClient(c) => {
            let script = out.clients.get_mut(c)?;
            if script.steps.is_empty() {
                return None;
            }
            script.steps.clear();
            script.calm_from = 0;
        }
    }
    Some(out)
}

/// Greedy delta debugging over real cluster runs: repeatedly applies
/// the first edit that still reproduces the original failure class,
/// until nothing helps or the run budget is spent. Wire runs cost real
/// seconds each, so budgets are far smaller than the simulator's.
///
/// # Errors
///
/// If the schedule does not fail in the first place, or a run hits an
/// environment failure.
pub fn shrink(
    schedule: &WireSchedule,
    budget: usize,
    opts: &WireRunOptions,
) -> Result<WireShrinkResult, String> {
    let first = run(schedule, opts)?;
    let Some(class) = first.class() else {
        return Err("schedule passes; nothing to shrink".to_string());
    };
    let mut current = schedule.clone();
    let mut runs = 1usize;
    let mut progress = true;
    while progress && runs < budget {
        progress = false;
        let edits: Vec<WireEdit> = (0..current.faults.len())
            .map(WireEdit::RemoveFault)
            .chain(
                (0..current.clients.len())
                    .flat_map(|c| [WireEdit::KeepCalmOnly(c), WireEdit::ClearClient(c)]),
            )
            .collect();
        for edit in edits {
            if runs >= budget {
                break;
            }
            let Some(candidate) = apply_edit(&current, edit) else {
                continue;
            };
            if validate(&candidate).is_err() {
                continue;
            }
            runs += 1;
            let verdict = run(&candidate, opts)?;
            if verdict.class() == Some(class) {
                current = candidate;
                progress = true;
                break;
            }
        }
    }
    Ok(WireShrinkResult {
        schedule: current,
        class,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WireChaosConfig {
        WireChaosConfig::standard(4, 1)
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(generate(seed, &cfg()), generate(seed, &cfg()));
        }
    }

    #[test]
    fn generated_schedules_validate() {
        for seed in 0..200 {
            let s = generate(seed, &cfg());
            validate(&s).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let o = generate(seed, &WireChaosConfig::over_faulted(4, 1));
            validate(&o).unwrap_or_else(|e| panic!("over-faulted seed {seed}: {e}"));
        }
    }

    #[test]
    fn hard_faults_respect_the_budget() {
        for seed in 0..200 {
            let s = generate(seed, &cfg());
            let hard: HashSet<usize> = s
                .faults
                .iter()
                .filter(|f| f.is_hard())
                .map(WireFault::server)
                .collect();
            assert!(
                hard.len() <= s.b,
                "seed {seed}: hard faults on {hard:?} exceed b={}",
                s.b
            );
        }
    }

    #[test]
    fn over_faulted_partitions_outlast_the_run() {
        for seed in 0..50 {
            let s = generate(seed, &WireChaosConfig::over_faulted(4, 1));
            let permanent: HashSet<usize> = s
                .faults
                .iter()
                .filter_map(|f| match *f {
                    WireFault::Partition { server, to_ms, .. } if to_ms >= s.deadline_ms => {
                        Some(server)
                    }
                    _ => None,
                })
                .collect();
            assert!(
                permanent.len() > s.b,
                "seed {seed}: only {permanent:?} permanently partitioned"
            );
        }
    }

    #[test]
    fn text_roundtrip_is_identity() {
        for seed in 0..100 {
            let s = generate(seed, &cfg());
            let text = s.to_text();
            let parsed = WireSchedule::from_text(&text).expect("parse own output");
            assert_eq!(parsed, s, "seed {seed} roundtrip mismatch");
            assert_eq!(parsed.to_text(), text, "seed {seed} text not stable");
        }
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(WireSchedule::from_text("").is_err());
        assert!(WireSchedule::from_text("not-a-schedule v9").is_err());
        let good = generate(3, &cfg()).to_text();
        let bad_header = good.replacen("v1", "v99", 1);
        assert!(WireSchedule::from_text(&bad_header).is_err());
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(WireSchedule::from_text(&truncated).is_err());
        let garbled = good.replacen("fault", "fult", 1);
        if garbled != good {
            assert!(WireSchedule::from_text(&garbled).is_err());
        }
    }

    #[test]
    fn link_plan_windows_resolve() {
        let s = WireSchedule {
            seed: 0,
            n: 4,
            b: 1,
            turbulence_ms: 2000,
            settle_ms: 2400,
            deadline_ms: 12_000,
            faults: vec![
                WireFault::Latency {
                    server: 2,
                    from_ms: 100,
                    to_ms: 500,
                    delay_ms: 40,
                    jitter_ms: 10,
                },
                WireFault::Reset {
                    server: 2,
                    at_ms: 300,
                },
                WireFault::Partition {
                    server: 1,
                    from_ms: 0,
                    to_ms: 1000,
                },
            ],
            clients: vec![WireScript {
                calm_from: 0,
                steps: vec![],
            }],
        };
        let p2 = LinkPlan::for_server(&s, 2);
        assert_eq!(p2.latency_at(200), Some((40, 10)));
        assert_eq!(p2.latency_at(600), None);
        assert!(p2.reset_between(100, 300));
        assert!(!p2.reset_between(300, 400), "reset fires exactly once");
        assert!(!p2.partitioned_at(500));
        let p1 = LinkPlan::for_server(&s, 1);
        assert!(p1.partitioned_at(500));
        assert!(!p1.partitioned_at(1500));
    }

    fn read_rec(client: usize, data: u64, ts: Timestamp, value: Vec<u8>) -> OpRecord {
        OpRecord {
            client,
            step: 0,
            calm: false,
            kind: "read",
            data,
            ok: true,
            read: Some((ts, value)),
            detail: String::new(),
        }
    }

    fn two_write_schedule() -> WireSchedule {
        WireSchedule {
            seed: 9,
            n: 4,
            b: 1,
            turbulence_ms: 2000,
            settle_ms: 2400,
            deadline_ms: 12_000,
            faults: vec![],
            clients: vec![WireScript {
                calm_from: 0,
                steps: vec![
                    WireStep::Write { data: 11, k: 0 },
                    WireStep::Write { data: 11, k: 1 },
                    WireStep::Read { data: 11 },
                ],
            }],
        }
    }

    #[test]
    fn oracle_accepts_a_clean_history() {
        let s = two_write_schedule();
        let records = vec![
            read_rec(0, 11, Timestamp::Version(1), chaos_value(0, 11, 0)),
            read_rec(0, 11, Timestamp::Version(2), chaos_value(0, 11, 1)),
        ];
        let (safety, liveness) = evaluate(&s, &records);
        assert!(safety.is_empty(), "{safety:?}");
        assert!(liveness.is_empty(), "{liveness:?}");
    }

    #[test]
    fn oracle_flags_timestamp_regression() {
        let s = two_write_schedule();
        let records = vec![
            read_rec(0, 11, Timestamp::Version(2), chaos_value(0, 11, 1)),
            read_rec(0, 11, Timestamp::Version(1), chaos_value(0, 11, 0)),
        ];
        let (safety, _) = evaluate(&s, &records);
        assert!(safety.iter().any(|v| v.contains("regressed")), "{safety:?}");
    }

    #[test]
    fn oracle_flags_unwritten_values() {
        let s = two_write_schedule();
        let records = vec![read_rec(
            0,
            11,
            Timestamp::Version(1),
            chaos_value(0, 11, 7),
        )];
        let (safety, _) = evaluate(&s, &records);
        assert!(
            safety.iter().any(|v| v.contains("never written")),
            "{safety:?}"
        );
        let garbage = vec![read_rec(0, 11, Timestamp::Version(1), b"junk".to_vec())];
        let (safety, _) = evaluate(&s, &garbage);
        assert!(
            safety.iter().any(|v| v.contains("does not parse")),
            "{safety:?}"
        );
    }

    #[test]
    fn oracle_flags_calm_failures_as_liveness() {
        let s = two_write_schedule();
        let records = vec![OpRecord {
            client: 0,
            step: 2,
            calm: true,
            kind: "read",
            data: 11,
            ok: false,
            read: None,
            detail: "Unavailable".to_string(),
        }];
        let (safety, liveness) = evaluate(&s, &records);
        assert!(safety.is_empty());
        assert_eq!(liveness.len(), 1, "{liveness:?}");
    }

    #[test]
    fn validate_rejects_cross_client_single_writer_items() {
        let mut s = two_write_schedule();
        s.clients.push(WireScript {
            calm_from: 0,
            steps: vec![WireStep::Write { data: 11, k: 0 }],
        });
        assert!(validate(&s).is_err());
    }

    #[test]
    fn shrink_edits_simplify_without_invalidating() {
        let s = generate(5, &cfg());
        for i in 0..s.faults.len() {
            if let Some(c) = apply_edit(&s, WireEdit::RemoveFault(i)) {
                assert_eq!(c.faults.len(), s.faults.len() - 1);
                validate(&c).expect("fault removal keeps schedules valid");
            }
        }
        for c in 0..s.clients.len() {
            if let Some(cand) = apply_edit(&s, WireEdit::KeepCalmOnly(c)) {
                validate(&cand).expect("calm-only keeps schedules valid");
                assert_eq!(cand.clients.get(c).map(|sc| sc.calm_from), Some(0));
            }
            if let Some(cand) = apply_edit(&s, WireEdit::ClearClient(c)) {
                validate(&cand).expect("cleared clients keep schedules valid");
            }
        }
    }
}
