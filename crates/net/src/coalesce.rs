//! Per-connection outbound message coalescing.
//!
//! The event loop already coalesces at the *byte* level — every frame a
//! tick produces lands in one [`WriteQueue`] and goes out in one `write`.
//! This module adds the *frame* level on top: messages staged for the
//! same connection within a tick are packed into multi-message
//! `TAG_BATCH` frames ([`sstore_core::codec::encode_msg_batch_parts`]),
//! so a burst of quorum responses or a gossip fan-out's worth of offers
//! costs one frame header and one length-prefix walk at the receiver
//! instead of one framing round-trip per message.
//!
//! Shapes preserved:
//!
//! - a single staged message encodes as a plain frame — zero overhead on
//!   the request/response fast path when there is nothing to coalesce;
//! - every produced frame fits the connection's `max_frame`, splitting
//!   greedily when a burst is larger (a message that cannot fit even
//!   alone is dropped, exactly the pre-existing oversized-enqueue
//!   silence);
//! - per-message byte accounting still records each message under its
//!   own kind with its own encoded length, so the §6 cost tables are
//!   unchanged by coalescing (the few bytes of batch framing are
//!   transport overhead, not message cost).

use sstore_core::codec::{encode_msg, encode_msg_batch_parts};
use sstore_core::metrics::WireStats;
use sstore_core::wire::Msg;

use crate::conn::WriteQueue;

/// Fixed overhead of a multi-message batch frame: wire version, the
/// batch tag, and the `u64` message count.
const BATCH_HEADER: usize = 2 + 8;

/// Per-message overhead inside a batch frame: the `u64` length prefix.
const PER_MSG: usize = 8;

/// Packs messages into batch frames, each within `max_frame`, recording
/// every message's own encoded length in `stats`. Messages too large to
/// ship even alone are skipped (backpressure silence, as at the write
/// queue). Frame boundaries preserve message order.
pub fn frames_from(
    msgs: impl IntoIterator<Item = Msg>,
    max_frame: usize,
    stats: &mut WireStats,
) -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut chunk: Vec<Vec<u8>> = Vec::new();
    let mut chunk_bytes = BATCH_HEADER;
    for msg in msgs {
        let part = encode_msg(&msg);
        stats.record(&msg, part.len());
        if part.len() > max_frame {
            continue;
        }
        let grown = chunk_bytes
            .saturating_add(PER_MSG)
            .saturating_add(part.len());
        if !chunk.is_empty() && grown > max_frame {
            frames.push(encode_msg_batch_parts(&chunk));
            chunk.clear();
            chunk_bytes = BATCH_HEADER;
        }
        chunk_bytes = chunk_bytes
            .saturating_add(PER_MSG)
            .saturating_add(part.len());
        chunk.push(part);
    }
    if !chunk.is_empty() {
        frames.push(encode_msg_batch_parts(&chunk));
    }
    frames
}

/// Staging buffer for one connection's outgoing messages within a tick.
///
/// The owner stages messages as the tick produces them and drains once
/// at flush time; a drain packs everything staged into as few frames as
/// `max_frame` allows and enqueues them on the connection's
/// [`WriteQueue`] (frames the queue cannot take are dropped — the same
/// backpressure-as-silence contract as direct enqueueing).
#[derive(Debug, Default)]
pub struct Coalescer {
    staged: Vec<Msg>,
}

impl Coalescer {
    /// An empty staging buffer.
    pub fn new() -> Coalescer {
        Coalescer { staged: Vec::new() }
    }

    /// Stages one message for the next drain.
    pub fn stage(&mut self, msg: Msg) {
        self.staged.push(msg);
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Packs everything staged into batch frames and enqueues them.
    pub fn drain_into(&mut self, out: &mut WriteQueue, max_frame: usize, stats: &mut WireStats) {
        if self.staged.is_empty() {
            return;
        }
        for frame in frames_from(self.staged.drain(..), max_frame, stats) {
            // lint:allow(L10): backpressure-as-silence — an oversized or
            // over-quota enqueue drops the frame exactly like a lossy
            // network, and the protocol's quorum math already tolerates
            // silent peers; surfacing the error here has no safe receiver.
            let _ = out.enqueue(&frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_core::codec::decode_frame_msgs;
    use sstore_core::types::OpId;

    fn ack(op: u64) -> Msg {
        Msg::CtxWriteAck { op: OpId(op) }
    }

    fn decode_all(frames: &[Vec<u8>]) -> Vec<Msg> {
        frames
            .iter()
            .flat_map(|f| decode_frame_msgs(f).expect("valid frame"))
            .collect()
    }

    #[test]
    fn burst_packs_into_one_frame_in_order() {
        let msgs: Vec<Msg> = (0..12).map(ack).collect();
        let mut stats = WireStats::new();
        let frames = frames_from(msgs.clone(), 64 * 1024, &mut stats);
        assert_eq!(frames.len(), 1, "one tick's burst is one frame");
        assert_eq!(decode_all(&frames), msgs);
        // Accounting is per message, under its own kind.
        let per_kind = stats.kind("ctx-write-ack").expect("recorded");
        assert_eq!(per_kind.count, 12);
    }

    #[test]
    fn single_message_has_no_batch_overhead() {
        let mut stats = WireStats::new();
        let frames = frames_from([ack(1)], 64 * 1024, &mut stats);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0], sstore_core::codec::encode_msg(&ack(1)));
    }

    #[test]
    fn splits_to_respect_max_frame() {
        let one = encode_msg(&ack(0)).len();
        // Room for roughly three messages per frame.
        let max = BATCH_HEADER + 3 * (PER_MSG + one);
        let msgs: Vec<Msg> = (0..10).map(ack).collect();
        let mut stats = WireStats::new();
        let frames = frames_from(msgs.clone(), max, &mut stats);
        assert!(frames.len() >= 4, "10 messages at 3 per frame split");
        for f in &frames {
            assert!(f.len() <= max, "frame {} exceeds cap {max}", f.len());
        }
        assert_eq!(decode_all(&frames), msgs, "order preserved across splits");
    }

    #[test]
    fn oversized_message_is_dropped_not_shipped() {
        let mut stats = WireStats::new();
        // A frame cap below even one encoded ack: everything is dropped.
        let frames = frames_from([ack(1), ack(2)], 2, &mut stats);
        assert!(frames.is_empty());
    }

    #[test]
    fn coalescer_drains_into_queue_and_resets() {
        let mut c = Coalescer::new();
        assert!(c.is_empty());
        for op in 0..5 {
            c.stage(ack(op));
        }
        assert!(!c.is_empty());
        let mut q = WriteQueue::new(64 * 1024, 256 * 1024);
        let mut stats = WireStats::new();
        c.drain_into(&mut q, 64 * 1024, &mut stats);
        assert!(c.is_empty());
        assert!(q.pending() > 0);
        // The queued bytes reassemble into one batch frame of 5 messages.
        let mut sink = Vec::new();
        q.flush_to(&mut sink).expect("vec sink");
        let mut r = crate::conn::FrameReader::new(64 * 1024);
        r.ingest(&sink);
        let frame = r.next_frame().expect("no cap").expect("one frame");
        assert_eq!(
            decode_frame_msgs(&frame).expect("valid"),
            (0..5).map(ack).collect::<Vec<_>>()
        );
        assert!(r.next_frame().expect("no cap").is_none());
    }
}
