//! Length-prefixed framing and the connection handshake.
//!
//! A connection carries a sequence of *frames*: a 4-byte big-endian length
//! followed by that many payload bytes. Every payload is either the
//! canonical encoding of a [`Msg`] (see [`sstore_core::codec`]) or the
//! 5-byte *hello* that opens a connection and identifies the dialing party:
//!
//! ```text
//! [WIRE_VERSION] [0xFE] [kind: 0 = client, 1 = server] [id: u16 BE]
//! ```
//!
//! The hello exists because routing identity (who a frame is from) is a
//! connection-layer concern — protocol messages deliberately do not repeat
//! the sender on every message. Note the hello is *routing* metadata only:
//! trust never derives from it, since every stored payload is client-signed
//! and verified end-to-end (paper §4).

use std::io::{self, Read, Write};

use sstore_core::codec::{CodecError, WIRE_VERSION};
use sstore_core::server::Addr;
use sstore_core::types::{ClientId, ServerId};

/// Default upper bound on one frame. Frames above this are treated as a
/// protocol violation and the connection is dropped — a remote peer must
/// not be able to make us allocate unbounded memory.
pub const DEFAULT_MAX_FRAME: usize = 32 * 1024 * 1024;

/// Payload tag of the hello frame (outside the [`Msg`] tag space).
const HELLO_TAG: u8 = 0xFE;

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads longer than `u32::MAX`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, rejecting lengths above `max` before allocating.
///
/// # Errors
///
/// Propagates I/O errors (including `UnexpectedEof` on a cleanly closed
/// connection); oversized frames surface as `InvalidData`.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {max}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Encodes the hello payload identifying `addr` as the dialing party.
pub fn encode_hello(addr: Addr) -> Vec<u8> {
    let (kind, id) = match addr {
        Addr::Client(c) => (0u8, c.0),
        Addr::Server(s) => (1u8, s.0),
    };
    let id = id.to_be_bytes();
    vec![WIRE_VERSION, HELLO_TAG, kind, id[0], id[1]]
}

/// Decodes a hello payload.
///
/// # Errors
///
/// [`CodecError`] for any payload that is not a well-formed hello.
pub fn decode_hello(payload: &[u8]) -> Result<Addr, CodecError> {
    if payload.len() < 5 {
        return Err(CodecError::Truncated);
    }
    if payload.len() > 5 {
        return Err(CodecError::TrailingBytes(payload.len() - 5));
    }
    if payload[0] != WIRE_VERSION {
        return Err(CodecError::BadVersion(payload[0]));
    }
    if payload[1] != HELLO_TAG {
        return Err(CodecError::BadTag(payload[1]));
    }
    let id = u16::from_be_bytes([payload[3], payload[4]]);
    match payload[2] {
        0 => Ok(Addr::Client(ClientId(id))),
        1 => Ok(Addr::Server(ServerId(id))),
        _ => Err(CodecError::NonCanonical("hello kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"hello frame"
        );
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_reports_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hello_roundtrip_both_kinds() {
        for addr in [Addr::Client(ClientId(7)), Addr::Server(ServerId(300))] {
            assert_eq!(decode_hello(&encode_hello(addr)).unwrap(), addr);
        }
    }

    #[test]
    fn malformed_hellos_rejected() {
        assert!(decode_hello(&[]).is_err());
        assert!(decode_hello(&[WIRE_VERSION, HELLO_TAG, 0, 0]).is_err());
        assert!(decode_hello(&[WIRE_VERSION, HELLO_TAG, 9, 0, 1]).is_err());
        assert!(decode_hello(&[WIRE_VERSION + 1, HELLO_TAG, 0, 0, 1]).is_err());
        assert!(decode_hello(&[WIRE_VERSION, 0x01, 0, 0, 1]).is_err());
        assert!(decode_hello(&[WIRE_VERSION, HELLO_TAG, 0, 0, 1, 0]).is_err());
    }
}
