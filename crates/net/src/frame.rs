//! Length-prefixed framing and the connection handshake.
//!
//! A connection carries a sequence of *frames*: a 4-byte big-endian length
//! followed by that many payload bytes. Every payload is either the
//! canonical encoding of a [`Msg`] (see [`sstore_core::codec`]) or the
//! 5-byte *hello* that opens a connection and identifies the dialing party:
//!
//! ```text
//! [WIRE_VERSION] [0xFE] [kind: 0 = client, 1 = server] [id: u16 BE]
//! ```
//!
//! The hello exists because routing identity (who a frame is from) is a
//! connection-layer concern — protocol messages deliberately do not repeat
//! the sender on every message. Note the hello is *routing* metadata only:
//! trust never derives from it, since every stored payload is client-signed
//! and verified end-to-end (paper §4).

use std::fmt;
use std::io::{self, Read, Write};

use sstore_core::codec::{CodecError, WIRE_VERSION};
use sstore_core::server::Addr;
use sstore_core::types::{ClientId, ServerId};

/// Default upper bound on one frame. Frames above this are treated as a
/// protocol violation and the connection is dropped — a remote peer must
/// not be able to make us allocate unbounded memory.
pub const DEFAULT_MAX_FRAME: usize = 32 * 1024 * 1024;

/// Payload tag of the hello frame (outside the [`Msg`] tag space).
const HELLO_TAG: u8 = 0xFE;

/// Everything that can go wrong at the framed-socket boundary.
///
/// Every byte a frame function looks at came off the network, so none of
/// these conditions is a program bug: they are all reported as values and
/// the caller decides (invariably: drop the connection). Nothing in this
/// module panics on remote input.
#[derive(Debug)]
pub enum WireError {
    /// Socket I/O failed, or the peer closed the connection mid-frame.
    Io(io::Error),
    /// A frame length exceeded the configured cap (or, on the write side,
    /// the `u32` length prefix).
    Oversized {
        /// The offending frame length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A payload was not a canonical encoding.
    Codec(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap {max}")
            }
            WireError::Codec(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Oversized { .. } => None,
            WireError::Codec(e) => Some(e),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors; payloads longer than `max` (or `u32::MAX`) are
/// rejected as [`WireError::Oversized`] before anything is written. The
/// bound is the same cap the *reader* enforces: emitting a frame above it
/// would only make the peer drop the connection, so the violation is
/// surfaced at the sender — where the bug is — instead.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), WireError> {
    if payload.len() > max {
        return Err(WireError::Oversized {
            len: payload.len(),
            max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, rejecting lengths above `max` before allocating.
///
/// # Errors
///
/// I/O errors (including `UnexpectedEof` on a cleanly closed connection)
/// surface as [`WireError::Io`]; an announced length above `max` as
/// [`WireError::Oversized`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Encodes the hello payload identifying `addr` as the dialing party.
pub fn encode_hello(addr: Addr) -> Vec<u8> {
    let (kind, id) = match addr {
        Addr::Client(c) => (0u8, c.0),
        Addr::Server(s) => (1u8, s.0),
    };
    let [hi, lo] = id.to_be_bytes();
    vec![WIRE_VERSION, HELLO_TAG, kind, hi, lo]
}

/// Decodes a hello payload.
///
/// # Errors
///
/// [`WireError::Codec`] for any payload that is not a well-formed hello.
pub fn decode_hello(payload: &[u8]) -> Result<Addr, WireError> {
    // The slice pattern proves the length once; no index below can panic.
    let [ver, tag, kind, hi, lo] = payload else {
        return Err(if payload.len() < 5 {
            CodecError::Truncated.into()
        } else {
            CodecError::TrailingBytes(payload.len() - 5).into()
        });
    };
    if *ver != WIRE_VERSION {
        return Err(CodecError::BadVersion(*ver).into());
    }
    if *tag != HELLO_TAG {
        return Err(CodecError::BadTag(*tag).into());
    }
    let id = u16::from_be_bytes([*hi, *lo]);
    match kind {
        0 => Ok(Addr::Client(ClientId(id))),
        1 => Ok(Addr::Server(ServerId(id))),
        _ => Err(CodecError::NonCanonical("hello kind").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame", DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"hello frame"
        );
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor, 1024).unwrap_err() {
            WireError::Oversized { len, max } => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn oversized_payload_rejected_on_write_before_any_byte() {
        // Symmetric to the read-side cap: the writer must refuse to emit
        // a frame the peer is guaranteed to drop, and must not leave a
        // half-written header on the wire.
        let mut buf = Vec::new();
        match write_frame(&mut buf, &[0u8; 1025], 1024).unwrap_err() {
            WireError::Oversized { len, max } => {
                assert_eq!(len, 1025);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(
            buf.is_empty(),
            "no bytes may be emitted for a rejected frame"
        );
    }

    #[test]
    fn truncated_frame_reports_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err() {
            WireError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn truncated_length_prefix_reports_eof() {
        // Fewer than the 4 length-prefix bytes: the reader must error, not
        // block or panic.
        for n in 0..4 {
            let mut cursor = io::Cursor::new(vec![0u8; n]);
            match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err() {
                WireError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
                other => panic!("expected Io, got {other:?}"),
            }
        }
    }

    #[test]
    fn hello_roundtrip_both_kinds() {
        for addr in [Addr::Client(ClientId(7)), Addr::Server(ServerId(300))] {
            assert_eq!(decode_hello(&encode_hello(addr)).unwrap(), addr);
        }
    }

    #[test]
    fn malformed_hellos_rejected() {
        // Short payloads of every length, including empty.
        for n in 0..5 {
            assert!(matches!(
                decode_hello(&vec![WIRE_VERSION; n]).unwrap_err(),
                WireError::Codec(CodecError::Truncated)
            ));
        }
        // Trailing garbage.
        assert!(matches!(
            decode_hello(&[WIRE_VERSION, HELLO_TAG, 0, 0, 1, 0]).unwrap_err(),
            WireError::Codec(CodecError::TrailingBytes(1))
        ));
        // Unknown kind byte.
        assert!(matches!(
            decode_hello(&[WIRE_VERSION, HELLO_TAG, 9, 0, 1]).unwrap_err(),
            WireError::Codec(CodecError::NonCanonical(_))
        ));
        // Wrong version and wrong tag.
        assert!(matches!(
            decode_hello(&[WIRE_VERSION + 1, HELLO_TAG, 0, 0, 1]).unwrap_err(),
            WireError::Codec(CodecError::BadVersion(_))
        ));
        assert!(matches!(
            decode_hello(&[WIRE_VERSION, 0x01, 0, 0, 1]).unwrap_err(),
            WireError::Codec(CodecError::BadTag(0x01))
        ));
    }
}
