//! The blocking socket client: [`ClientCore`] driven over TCP.
//!
//! [`NetClient`] mirrors `sstore-transport`'s `SyncClient` loop exactly —
//! begin an operation, pump messages and protocol timers until the state
//! machine reports a result — but its messages travel through framed TCP
//! connections instead of in-process channels. Each server gets one lazily
//! (re)dialed connection with bounded exponential backoff; a dead or
//! unreachable server therefore surfaces to the protocol as *silence*, and
//! the quorum logic rides over up to `b` of them exactly as the paper
//! prescribes. A hard per-request deadline bounds every blocking call.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_core::client::{ClientCore, ClientOp, OpResult, Outcome, Output};
use sstore_core::codec::{decode_frame_msgs, encode_msg};
use sstore_core::config::ClientConfig;
use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::metrics::WireStats;
use sstore_core::server::Addr;
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, OpId, ServerId, Timestamp};
use sstore_core::wire::Msg;
use sstore_core::Context;
use sstore_crypto::schnorr::SigningKey;
use sstore_simnet::SimTime;
use sstore_transport::{StoreError, StoreHandle};

use crate::backoff::LinkHealth;
use crate::frame::{encode_hello, read_frame, write_frame, WireError, DEFAULT_MAX_FRAME};

/// Socket-layer tuning for a [`NetClient`].
///
/// Redial pacing is *not* configured here: it comes from the protocol-level
/// [`sstore_core::RetryPolicy`] in the cluster's `ClientConfig`, so the sim
/// client's phase retries and the socket client's reconnects share one
/// bounded-backoff schedule.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Hard deadline for one blocking operation (covers all retry rounds).
    pub request_timeout: Duration,
    /// Timeout for dialing one server.
    pub connect_timeout: Duration,
    /// Upper bound on one inbound frame.
    pub max_frame: usize,
    /// Hedge a read-family operation still in flight after this
    /// percentile of recently observed read latencies (e.g. `0.95`):
    /// contact one extra server with the current-phase request instead of
    /// waiting out the phase timer. `None` (the default) disables
    /// hedging. Only [`crate::PipeClient`] hedges — the blocking client's
    /// single in-flight op has no latency population to draw from.
    pub hedge_percentile: Option<f64>,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            request_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(250),
            max_frame: DEFAULT_MAX_FRAME,
            hedge_percentile: None,
        }
    }
}

/// What a reader thread reports back to the blocking loop.
// `Deliver` dwarfs `Down`, but events flow straight through the channel to
// the blocking loop and are never stored in bulk.
#[allow(clippy::large_enum_variant)]
enum Event {
    /// A decoded message from a server. Deliveries are processed even if
    /// the link has since been cycled — messages are self-validating.
    Deliver(ServerId, Msg),
    /// The link with the given epoch died.
    Down(ServerId, u64),
}

/// Per-server connection state.
struct Link {
    /// Write half of the current connection, if one is up.
    writer: Option<TcpStream>,
    /// Bumped on every successful dial; guards stale `Down` events.
    epoch: u64,
    /// Earliest time the next dial may be attempted.
    next_attempt: Instant,
    /// Fault streak and decorrelated-jitter redial pacing; quarantines
    /// flapping links (see [`crate::LinkHealth`]).
    health: LinkHealth,
}

/// Builds the redial health tracker from the protocol retry policy: the
/// dial-backoff base seeds the jitter floor, the policy's delay ceiling
/// caps it and doubles as the uptime needed to forgive a fault streak.
fn link_health(retry: &sstore_core::RetryPolicy) -> LinkHealth {
    let min = Duration::from_micros(retry.dial_delay(1).as_micros());
    let max = Duration::from_micros(retry.max_delay.as_micros());
    LinkHealth::new(min, max, max)
}

/// Handle on a TCP-deployed cluster: directory, client keys and the server
/// listen addresses. Mint blocking [`NetClient`]s from it.
///
/// Both sides of a deployment must agree on the client key set; like the
/// paper's "well-known public keys" assumption, this reproduction derives
/// them deterministically from `(clients, key_seed)`, so pass the same pair
/// to [`NetCluster::connect`] and to each `sstore-server` process.
pub struct NetCluster {
    dir: Arc<Directory>,
    signing: HashMap<ClientId, SigningKey>,
    addrs: Vec<SocketAddr>,
    client_cfg: ClientConfig,
    net_cfg: NetClientConfig,
}

impl NetCluster {
    /// Points a cluster handle at `addrs` (one listen address per server,
    /// indexed by server id) tolerating `b` faults, with keys for
    /// `clients` clients derived from `key_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `(addrs.len(), b)` is invalid (requires `n ≥ 3b + 1`).
    pub fn connect(addrs: Vec<SocketAddr>, b: usize, clients: u16, key_seed: u64) -> Self {
        Self::connect_with(
            addrs,
            b,
            clients,
            key_seed,
            ClientConfig::default(),
            NetClientConfig::default(),
        )
    }

    /// [`NetCluster::connect`] with explicit protocol and socket configs.
    ///
    /// # Panics
    ///
    /// Panics if `(addrs.len(), b)` is invalid (requires `n ≥ 3b + 1`).
    pub fn connect_with(
        addrs: Vec<SocketAddr>,
        b: usize,
        clients: u16,
        key_seed: u64,
        client_cfg: ClientConfig,
        net_cfg: NetClientConfig,
    ) -> Self {
        let (signing, verifying) = generate_client_keys(clients, key_seed);
        let dir = Directory::new(addrs.len(), b, verifying);
        NetCluster {
            dir,
            signing,
            addrs,
            client_cfg,
            net_cfg,
        }
    }

    /// The cluster directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }

    /// Creates the blocking socket handle for client `i`. Connections are
    /// dialed lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics if `i` has no registered key (i.e. `i >= clients`).
    pub fn client(&self, i: u16) -> NetClient {
        let id = ClientId(i);
        let key = self
            .signing
            .get(&id)
            // lint:allow(L1): documented panic on a local config precondition; `i` never comes off the wire
            .expect("client key registered")
            .clone();
        let (tx, rx) = unbounded();
        let links = self
            .addrs
            .iter()
            .map(|_| Link {
                writer: None,
                epoch: 0,
                next_attempt: Instant::now(),
                health: link_health(&self.client_cfg.retry),
            })
            .collect();
        NetClient {
            core: ClientCore::new(id, self.dir.clone(), self.client_cfg.clone(), key),
            links,
            addrs: self.addrs.clone(),
            tx,
            rx,
            rng: StdRng::seed_from_u64(0xc0ffee + u64::from(i)),
            timers: BinaryHeap::new(),
            start: Instant::now(),
            stats: WireStats::new(),
            cfg: self.net_cfg.clone(),
        }
    }
}

impl NetCluster {
    /// Creates the *pipelined* non-blocking handle for client `i`: many
    /// operations in flight over one connection per server, completions
    /// matched by op id (see [`crate::PipeClient`]). Connections are
    /// dialed lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics if `i` has no registered key (i.e. `i >= clients`).
    pub fn pipe_client(&self, i: u16) -> crate::PipeClient {
        let id = ClientId(i);
        let key = self
            .signing
            .get(&id)
            // lint:allow(L1): documented panic on a local config precondition; `i` never comes off the wire
            .expect("client key registered")
            .clone();
        let core = ClientCore::new(id, self.dir.clone(), self.client_cfg.clone(), key);
        crate::PipeClient::new(core, self.addrs.clone(), self.net_cfg.clone())
    }
}

/// A blocking client handle speaking the framed TCP protocol.
pub struct NetClient {
    core: ClientCore,
    links: Vec<Link>,
    addrs: Vec<SocketAddr>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    rng: StdRng,
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    start: Instant,
    stats: WireStats,
    cfg: NetClientConfig,
}

impl NetClient {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Measured-vs-formula byte accounting for every frame this client has
    /// sent.
    pub fn wire_stats(&self) -> &WireStats {
        &self.stats
    }

    /// (Re)dials every server whose link is down and whose backoff has
    /// elapsed. Failures just push the next attempt out — the protocol
    /// treats the server as silent in the meantime.
    fn ensure_links(&mut self) {
        let me = self.core.id();
        for (i, link) in self.links.iter_mut().enumerate() {
            if link.writer.is_some() || Instant::now() < link.next_attempt {
                continue;
            }
            let Some(&addr) = self.addrs.get(i) else {
                continue;
            };
            match dial(addr, me, &self.cfg) {
                Ok(stream) => {
                    link.epoch += 1;
                    link.health.on_connect(Instant::now());
                    let sid = ServerId(i as u16);
                    let epoch = link.epoch;
                    let tx = self.tx.clone();
                    let max_frame = self.cfg.max_frame;
                    if let Ok(mut reader) = stream.try_clone() {
                        std::thread::spawn(move || {
                            'conn: while let Ok(msgs) = read_frame(&mut reader, max_frame)
                                .map_err(|_| ())
                                .and_then(|p| decode_frame_msgs(&p).map_err(|_| ()))
                            {
                                // A server may coalesce several responses
                                // into one frame; deliver each in order.
                                for msg in msgs {
                                    if tx.send(Event::Deliver(sid, msg)).is_err() {
                                        break 'conn;
                                    }
                                }
                            }
                            let _ = tx.send(Event::Down(sid, epoch));
                        });
                        link.writer = Some(stream);
                    }
                }
                Err(_) => {
                    let delay = link.health.on_dial_failure(&mut self.rng);
                    link.next_attempt = Instant::now() + delay;
                }
            }
        }
    }

    /// Tears down server `sid`'s connection after a send failure or a
    /// reader-reported drop. Redial pacing comes from the link's health
    /// score: a long-lived connection that died redials promptly, while a
    /// flapping link (accept-then-die) keeps its fault streak and backs
    /// off — the transport-level quarantine that lets quorums widen to
    /// healthier servers.
    fn drop_link(&mut self, sid: ServerId) {
        if let Some(link) = self.links.get_mut(sid.0 as usize) {
            if let Some(stream) = link.writer.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            let delay = link.health.on_drop(Instant::now(), &mut self.rng);
            link.next_attempt = Instant::now() + delay;
        }
    }

    /// Sends one message, dropping the link on failure (silence, not error).
    fn send(&mut self, to: ServerId, msg: Msg) {
        let bytes = encode_msg(&msg);
        self.stats.record(&msg, bytes.len());
        let ok = match self
            .links
            .get_mut(to.0 as usize)
            .and_then(|l| l.writer.as_mut())
        {
            Some(stream) => write_frame(stream, &bytes, self.cfg.max_frame).is_ok(),
            None => return,
        };
        if !ok {
            self.drop_link(to);
        }
    }

    /// Runs one operation to completion against the hard request deadline.
    fn run_op(&mut self, op: ClientOp) -> Result<OpResult, StoreError> {
        self.ensure_links();
        let now = self.now();
        let (op_id, out) = self.core.begin(op, now, &mut self.rng);
        if let Some(r) = self.dispatch(out, op_id) {
            return map_result(r);
        }
        let hard_deadline = Instant::now() + self.cfg.request_timeout;
        loop {
            let wake = self
                .timers
                .peek()
                .map(|Reverse((t, _))| *t)
                .unwrap_or(hard_deadline);
            let timeout = wake
                .min(hard_deadline)
                .saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(Event::Deliver(sid, msg)) => {
                    let now = self.now();
                    let out = self.core.on_message(sid, msg, now);
                    if let Some(r) = self.dispatch(out, op_id) {
                        return map_result(r);
                    }
                }
                Ok(Event::Down(sid, epoch)) => {
                    if self
                        .links
                        .get(sid.0 as usize)
                        .is_some_and(|l| l.epoch == epoch && l.writer.is_some())
                    {
                        self.drop_link(sid);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let now = self.now();
                    self.core.expire(op_id, now);
                    return Err(StoreError::Disconnected);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= hard_deadline {
                        // Abandon the op in the core too: late responses
                        // must not resurrect it, and the op table must
                        // not leak one entry per timed-out request.
                        let now = self.now();
                        self.core.expire(op_id, now);
                        return Err(StoreError::Unavailable);
                    }
                    // Fire due protocol timers; retry rounds get a chance
                    // to redial before their messages go out.
                    self.ensure_links();
                    while let Some(Reverse((t, token))) = self.timers.peek().copied() {
                        if t > Instant::now() {
                            break;
                        }
                        self.timers.pop();
                        let now = self.now();
                        let out = self.core.on_timeout(token, now);
                        if let Some(r) = self.dispatch(out, op_id) {
                            return map_result(r);
                        }
                    }
                }
            }
        }
    }

    /// Sends effects; returns the result if `op_id` completed.
    fn dispatch(&mut self, out: Output, op_id: OpId) -> Option<OpResult> {
        for (to, msg) in out.sends {
            self.send(to, msg);
        }
        for (delay, token) in out.timers {
            let at = Instant::now() + Duration::from_micros(delay.as_micros());
            self.timers.push(Reverse((at, token)));
        }
        out.done.into_iter().find(|r| r.op == op_id)
    }

    /// Starts a session for `group` ([`ClientOp::Connect`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    pub fn connect(&mut self, group: GroupId, recover: bool) -> Result<OpResult, StoreError> {
        self.run_op(ClientOp::Connect { group, recover })
    }

    /// Stores the context and ends the session.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    pub fn disconnect(&mut self, group: GroupId) -> Result<OpResult, StoreError> {
        self.run_op(ClientOp::Disconnect { group })
    }

    /// Single-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `b+1` servers cannot be reached.
    pub fn write(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        let r = self.run_op(ClientOp::Write {
            data,
            group,
            consistency,
            value,
        })?;
        match r.outcome {
            Outcome::WriteOk { ts } => Ok(ts),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Single-writer read; returns `(timestamp, value)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Stale`] when only older-than-context copies are
    /// reachable; [`StoreError::Unavailable`] when no quorum forms.
    pub fn read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>), StoreError> {
        let r = self.run_op(ClientOp::Read {
            data,
            group,
            consistency,
        })?;
        match r.outcome {
            Outcome::ReadOk { ts, value, .. } => Ok((ts, value)),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Multi-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `2b+1` servers cannot be reached.
    pub fn mw_write(
        &mut self,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        let r = self.run_op(ClientOp::MwWrite { data, group, value })?;
        match r.outcome {
            Outcome::WriteOk { ts } => Ok(ts),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Multi-writer read; returns `(timestamp, value, confirmations)`.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::read`], plus [`StoreError::FaultyWriter`] when
    /// the read exposes writer equivocation.
    pub fn mw_read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>, usize), StoreError> {
        let r = self.run_op(ClientOp::MwRead {
            data,
            group,
            consistency,
        })?;
        match r.outcome {
            Outcome::ReadOk {
                ts,
                value,
                confirmations,
            } => Ok((ts, value, confirmations)),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Drops all volatile state as if the process crashed (then use
    /// `connect(group, true)` to reconstruct).
    pub fn simulate_crash(&mut self) {
        self.core.crash();
    }

    /// The client's current context for `group`.
    pub fn context(&self, group: GroupId) -> Context {
        self.core.context(group)
    }
}

impl Drop for NetClient {
    /// Closes every connection so reader threads unblock and exit.
    fn drop(&mut self) {
        for link in &mut self.links {
            if let Some(stream) = link.writer.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Dials one server and performs the hello handshake.
fn dial(addr: SocketAddr, me: ClientId, cfg: &NetClientConfig) -> Result<TcpStream, WireError> {
    let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    let mut hello = stream.try_clone()?;
    write_frame(&mut hello, &encode_hello(Addr::Client(me)), cfg.max_frame)?;
    Ok(stream)
}

fn map_result(r: OpResult) -> Result<OpResult, StoreError> {
    match &r.outcome {
        Outcome::Unavailable => Err(StoreError::Unavailable),
        Outcome::Stale { .. } => Err(StoreError::Stale),
        Outcome::FaultyWriterDetected { .. } => Err(StoreError::FaultyWriter),
        _ => Ok(r),
    }
}

impl StoreHandle for NetClient {
    fn connect(&mut self, group: GroupId, recover: bool) -> Result<OpResult, StoreError> {
        NetClient::connect(self, group, recover)
    }

    fn disconnect(&mut self, group: GroupId) -> Result<OpResult, StoreError> {
        NetClient::disconnect(self, group)
    }

    fn write(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        NetClient::write(self, data, group, consistency, value)
    }

    fn read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>), StoreError> {
        NetClient::read(self, data, group, consistency)
    }

    fn mw_write(
        &mut self,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        NetClient::mw_write(self, data, group, value)
    }

    fn mw_read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>, usize), StoreError> {
        NetClient::mw_read(self, data, group, consistency)
    }

    fn simulate_crash(&mut self) {
        NetClient::simulate_crash(self)
    }

    fn context(&self, group: GroupId) -> Context {
        NetClient::context(self, group)
    }
}
