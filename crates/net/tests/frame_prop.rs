//! Property-based coverage for the framing layer: arbitrary or mangled
//! bytes must never panic the frame reader or the hello decoder — every
//! byte both of them look at comes straight off a socket, so a reachable
//! panic here would let one malicious peer crash a server and burn part of
//! the protocol's `b`-fault budget.

use std::io::Cursor;

use proptest::prelude::*;

use sstore_core::server::Addr;
use sstore_core::types::{ClientId, ServerId};
use sstore_net::{
    decode_hello, encode_hello, read_frame, write_frame, WireError, DEFAULT_MAX_FRAME,
};

fn arb_addr() -> impl Strategy<Value = Addr> {
    (any::<bool>(), any::<u16>()).prop_map(|(server, id)| {
        if server {
            Addr::Server(ServerId(id))
        } else {
            Addr::Client(ClientId(id))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), payload);
    }

    #[test]
    fn read_frame_never_panics_on_junk(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        max in 0usize..1024,
    ) {
        let mut cursor = Cursor::new(junk);
        let _ = read_frame(&mut cursor, max);
    }

    #[test]
    fn oversized_length_rejected_before_reading_body(len in 1025u32.., tail in any::<u8>()) {
        // Only the length prefix and one stray byte are present: the
        // announced length must be rejected before the body is read (or
        // allocated), not after an attempted huge allocation.
        let mut buf = len.to_be_bytes().to_vec();
        buf.push(tail);
        let mut cursor = Cursor::new(buf);
        prop_assert!(
            matches!(
                read_frame(&mut cursor, 1024),
                Err(WireError::Oversized { max: 1024, .. })
            ),
            "oversized announced length was not rejected"
        );
    }

    #[test]
    fn write_side_cap_is_symmetric(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        max in 0usize..2048,
    ) {
        // The writer enforces the same bound the reader does: anything it
        // emits must be readable back under the same cap, and anything
        // over the cap must be rejected with zero bytes emitted.
        let mut buf = Vec::new();
        match write_frame(&mut buf, &payload, max) {
            Ok(()) => {
                prop_assert!(payload.len() <= max);
                let mut cursor = Cursor::new(buf);
                prop_assert_eq!(read_frame(&mut cursor, max).unwrap(), payload);
            }
            Err(WireError::Oversized { len, max: cap }) => {
                prop_assert!(payload.len() > max);
                prop_assert_eq!(len, payload.len());
                prop_assert_eq!(cap, max);
                prop_assert!(buf.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    #[test]
    fn decode_hello_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_hello(&junk);
    }

    #[test]
    fn hello_roundtrip(addr in arb_addr()) {
        prop_assert_eq!(decode_hello(&encode_hello(addr)).unwrap(), addr);
    }

    #[test]
    fn mutated_hello_never_panics(addr in arb_addr(), at in 0usize..5, mask in 1u8..) {
        let mut bytes = encode_hello(addr);
        bytes[at] ^= mask;
        // Must not panic; if it still decodes, the flipped byte was inside
        // the id field, so it must decode to a *different* address.
        if let Ok(other) = decode_hello(&bytes) {
            prop_assert_ne!(other, addr);
        }
    }
}
