//! Loopback integration test for the TCP deployment path: a real `n = 4`,
//! `b = 1` cluster on ephemeral ports, exercised through the same blocking
//! API as the in-process transports — including one server killed mid-run.

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::types::{Consistency, DataId, GroupId, ServerId, Timestamp};
use sstore_core::{ClientConfig, ServerConfig, ServerNode};
use sstore_net::{
    NetClientConfig, NetCluster, NetServer, NetServerConfig, ServingMode, StoreHandle,
};

const N: usize = 4;
const B: usize = 1;
const CLIENTS: u16 = 2;
const KEY_SEED: u64 = 0x7ea1;

/// Binds `N` ephemeral listeners first (so every server knows the full
/// address list), then starts one [`NetServer`] per listener.
fn start_servers(serving: ServingMode) -> (Vec<NetServer>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let (_, verifying) = generate_client_keys(CLIENTS, KEY_SEED);
    let dir = Directory::new(N, B, verifying);
    let servers = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let node = ServerNode::new(ServerId(i as u16), dir.clone(), ServerConfig::default());
            let config = NetServerConfig {
                serving,
                ..NetServerConfig::default()
            };
            NetServer::start(node, listener, addrs.clone(), config).expect("server start")
        })
        .collect();
    (servers, addrs)
}

fn cluster_for(addrs: Vec<SocketAddr>) -> NetCluster {
    NetCluster::connect_with(
        addrs,
        B,
        CLIENTS,
        KEY_SEED,
        ClientConfig::default(),
        NetClientConfig {
            request_timeout: Duration::from_secs(10),
            ..NetClientConfig::default()
        },
    )
}

#[test]
fn full_protocol_over_loopback_with_mid_run_server_kill() {
    full_protocol_with_mid_run_kill(ServingMode::EventLoop);
}

/// The legacy thread-per-connection path must pass the identical
/// scenario: it stays available behind `ServingMode::Threaded` until the
/// event loop has fully replaced it, and parity here is what justifies
/// both sharing one protocol test.
#[test]
fn full_protocol_threaded_parity() {
    full_protocol_with_mid_run_kill(ServingMode::Threaded);
}

fn full_protocol_with_mid_run_kill(serving: ServingMode) {
    let (mut servers, addrs) = start_servers(serving);
    let cluster = cluster_for(addrs);
    let mut alice = cluster.client(0);
    let g = GroupId(1);

    // MRC write/read over real sockets.
    alice.connect(g, false).expect("connect");
    alice
        .write(DataId(1), g, Consistency::Mrc, b"over tcp".to_vec())
        .expect("mrc write");
    let (ts, v) = alice
        .read(DataId(1), g, Consistency::Mrc)
        .expect("mrc read");
    assert_eq!(v, b"over tcp");
    assert_eq!(ts, Timestamp::Version(1));

    // CC write/read.
    alice
        .write(DataId(2), g, Consistency::Cc, b"causal".to_vec())
        .expect("cc write");
    let (_, v) = alice.read(DataId(2), g, Consistency::Cc).expect("cc read");
    assert_eq!(v, b"causal");

    // Kill one server mid-run: with n = 4, b = 1 every quorum still forms,
    // and the dead server surfaces only as silence.
    let killed = servers.remove(2);
    killed.shutdown();

    // Multi-writer write/read with the server down.
    alice
        .mw_write(DataId(9), g, b"multi".to_vec())
        .expect("mw write");
    let (_, v, confirmations) = alice
        .mw_read(DataId(9), g, Consistency::Cc)
        .expect("mw read");
    assert_eq!(v, b"multi");
    assert!(confirmations >= 2 * B + 1 - B, "2b+1 quorum minus b faulty");

    // Context reconstruction (paper §5.1): crash, then recover the context
    // from signed server metadata — still with one server dead.
    alice.simulate_crash();
    alice.connect(g, true).expect("recovering connect");
    assert!(
        !alice.context(g).is_empty(),
        "reconstructed context must cover past writes"
    );
    let (_, v) = alice
        .read(DataId(1), g, Consistency::Mrc)
        .expect("read after recovery");
    assert_eq!(v, b"over tcp");
    alice.disconnect(g).expect("disconnect");

    // The client measured real encoded bytes for the frames it sent.
    let stats = alice.wire_stats();
    assert!(stats.total_count() > 0);
    assert!(stats.total_encoded_bytes() > 0);
    drop(alice);
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn cross_client_visibility_over_loopback() {
    let (servers, addrs) = start_servers(ServingMode::EventLoop);
    let cluster = cluster_for(addrs);
    let g = GroupId(2);
    let mut writer = cluster.client(0);
    writer.connect(g, false).expect("writer connect");
    writer
        .write(DataId(5), g, Consistency::Mrc, b"bulletin".to_vec())
        .expect("write");
    // Poll with a bounded deadline instead of a fixed sleep: gossip
    // dissemination timing varies under load, and a flat sleep is either
    // flaky (too short) or slow (long enough for the worst case).
    let mut reader = cluster.client(1);
    reader.connect(g, false).expect("reader connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let v = loop {
        match reader.read(DataId(5), g, Consistency::Mrc) {
            Ok((_, v)) => break v,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "reader never saw the write within the deadline: {e:?}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    assert_eq!(v, b"bulletin");
    drop(writer);
    drop(reader);
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn generic_store_handle_runs_on_tcp() {
    // The same code drives LocalCluster and NetCluster via StoreHandle.
    fn exercise(h: &mut dyn StoreHandle, g: GroupId) {
        h.connect(g, false).unwrap();
        h.write(DataId(1), g, Consistency::Mrc, b"generic".to_vec())
            .unwrap();
        let (_, v) = h.read(DataId(1), g, Consistency::Mrc).unwrap();
        assert_eq!(v, b"generic");
        h.disconnect(g).unwrap();
    }
    let (servers, addrs) = start_servers(ServingMode::EventLoop);
    let cluster = cluster_for(addrs);
    let mut c = cluster.client(0);
    exercise(&mut c, GroupId(8));
    drop(c);
    for s in servers {
        s.shutdown();
    }
}
