//! Property-based coverage for connection buffering: the frame reader
//! must reassemble identical frames no matter how the kernel fragments
//! the byte stream, and the write queue must emit an identical stream no
//! matter how small the socket's accepted chunks are. TCP guarantees
//! neither read nor write boundaries, so both sides are driven here
//! through arbitrary split points.

use std::io::{self, Write};

use proptest::prelude::*;

use sstore_net::{write_frame, Enqueued, FrameReader, WriteQueue, DEFAULT_MAX_FRAME};

/// A writer that accepts at most `chunk` bytes per call — the worst-case
/// trickle a non-blocking socket can impose.
struct Trickle {
    out: Vec<u8>,
    chunk: usize,
}

impl Write for Trickle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let take = buf.len().min(self.chunk.max(1));
        self.out.extend_from_slice(&buf[..take]);
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Splits `stream` at pseudo-arbitrary boundaries derived from `cuts`
/// and feeds each fragment to the reader, collecting completed frames.
fn ingest_fragmented(
    reader: &mut FrameReader,
    stream: &[u8],
    cuts: &[usize],
) -> Result<Vec<Vec<u8>>, sstore_net::WireError> {
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut cut_idx = 0;
    while pos < stream.len() {
        let step = if cuts.is_empty() {
            stream.len()
        } else {
            1 + cuts[cut_idx % cuts.len()] % 17
        };
        cut_idx += 1;
        let end = (pos + step).min(stream.len());
        reader.ingest(&stream[pos..end]);
        while let Some(frame) = reader.next_frame()? {
            frames.push(frame);
        }
        pos = end;
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fragmented_reads_reassemble_exactly(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..8,
        ),
        cuts in proptest::collection::vec(0usize..64, 0..32),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p, DEFAULT_MAX_FRAME).unwrap();
        }
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let frames = ingest_fragmented(&mut reader, &stream, &cuts).unwrap();
        prop_assert_eq!(frames, payloads);
        prop_assert_eq!(reader.pending(), 0, "no leftover bytes after last frame");
    }

    #[test]
    fn fragmented_junk_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(0usize..64, 0..32),
    ) {
        // Junk is not a valid stream, but the reader must fail cleanly
        // (or keep waiting for more bytes), never panic.
        let mut reader = FrameReader::new(512);
        let _ = ingest_fragmented(&mut reader, &junk, &cuts);
    }

    #[test]
    fn trickled_writes_roundtrip_through_reader(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..8,
        ),
        chunk in 1usize..40,
    ) {
        // Enqueue everything, flush through a writer that takes only
        // `chunk` bytes at a time, then reassemble: the queue's partial-
        // write bookkeeping must never duplicate, drop, or reorder bytes.
        let mut queue = WriteQueue::new(DEFAULT_MAX_FRAME, usize::MAX);
        for p in &payloads {
            prop_assert_eq!(queue.enqueue(p).unwrap(), Enqueued::Queued);
        }
        let mut sink = Trickle { out: Vec::new(), chunk };
        while queue.pending() > 0 {
            let wrote = queue.flush_to(&mut sink).unwrap();
            prop_assert!(wrote > 0, "flush made no progress with bytes pending");
        }
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        reader.ingest(&sink.out);
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            frames.push(frame);
        }
        prop_assert_eq!(frames, payloads);
    }

    #[test]
    fn backpressure_drops_are_counted_not_corrupting(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..100),
            1..12,
        ),
        cap in 0usize..256,
    ) {
        // With a tiny buffer cap some enqueues are dropped; the ones that
        // are queued must still form a valid stream, and every drop must
        // be counted. (The queue guarantees room for at least one maximum
        // frame, so a small max_frame keeps the cap genuinely tight.)
        let mut queue = WriteQueue::new(128, cap);
        let mut kept = Vec::new();
        let mut dropped = 0u64;
        for p in &payloads {
            match queue.enqueue(p).unwrap() {
                Enqueued::Queued => kept.push(p.clone()),
                Enqueued::Dropped => dropped += 1,
            }
        }
        prop_assert_eq!(queue.dropped(), dropped);
        let mut sink = Trickle { out: Vec::new(), chunk: 7 };
        while queue.pending() > 0 {
            queue.flush_to(&mut sink).unwrap();
        }
        let mut reader = FrameReader::new(128);
        reader.ingest(&sink.out);
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            frames.push(frame);
        }
        prop_assert_eq!(frames, kept);
    }
}
