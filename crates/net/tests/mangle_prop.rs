//! Property-based coverage for wire-level byte mangling: a valid frame
//! stream subjected to truncation, bit flips, and splices must pass
//! through [`FrameReader`] and the canonical codec without panicking,
//! and any message that still decodes must re-encode to bytes that
//! decode back to the same message (the canonical-form invariant the
//! chaos proxy's corruption faults lean on — a flipped bit may turn one
//! message into another, but never into a panic or a non-canonical
//! decoding).

use proptest::prelude::*;

use sstore_core::codec::{decode_frame_msgs, encode_msg, encode_msg_batch};
use sstore_core::types::{ClientId, DataId, GroupId, OpId};
use sstore_core::wire::Msg;
use sstore_net::{write_frame, FrameReader, DEFAULT_MAX_FRAME};

/// Structurally simple messages cover the interesting mangling surface:
/// tags, fixed-width integers, and the batch container. (Deep payloads —
/// signatures, contexts, items — get their own treatment in the core
/// codec property tests.)
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), any::<u16>(), any::<u32>()).prop_map(|(op, client, group)| {
            Msg::CtxReadReq {
                op: OpId(op),
                client: ClientId(client),
                group: GroupId(group),
            }
        }),
        any::<u64>().prop_map(|op| Msg::CtxWriteAck { op: OpId(op) }),
        (any::<u64>(), any::<u32>()).prop_map(|(op, group)| Msg::TsScanReq {
            op: OpId(op),
            group: GroupId(group),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(op, data)| Msg::TsQueryReq {
            op: OpId(op),
            data: DataId(data),
        }),
        any::<u64>().prop_map(|op| Msg::Shed { op: OpId(op) }),
    ]
}

/// One mangling step applied to a byte stream.
#[derive(Debug, Clone)]
enum Mangle {
    /// Cut the stream at `at % (len + 1)`.
    Truncate { at: usize },
    /// Flip bit `bit` of byte `at % len`.
    BitFlip { at: usize, bit: u8 },
    /// Re-insert a copy of `stream[src..src+len]` at `dst` — bytes from a
    /// real frame appearing where they don't belong.
    Splice { src: usize, len: usize, dst: usize },
}

fn arb_mangle() -> impl Strategy<Value = Mangle> {
    prop_oneof![
        any::<usize>().prop_map(|at| Mangle::Truncate { at }),
        (any::<usize>(), 0u8..8).prop_map(|(at, bit)| Mangle::BitFlip { at, bit }),
        (any::<usize>(), 1usize..64, any::<usize>()).prop_map(|(src, len, dst)| Mangle::Splice {
            src,
            len,
            dst
        }),
    ]
}

fn apply(stream: &mut Vec<u8>, m: &Mangle) {
    match *m {
        Mangle::Truncate { at } => {
            let cut = at % (stream.len() + 1);
            stream.truncate(cut);
        }
        Mangle::BitFlip { at, bit } => {
            if !stream.is_empty() {
                let idx = at % stream.len();
                stream[idx] ^= 1 << bit;
            }
        }
        Mangle::Splice { src, len, dst } => {
            if !stream.is_empty() {
                let s = src % stream.len();
                let e = (s + len).min(stream.len());
                let chunk: Vec<u8> = stream[s..e].to_vec();
                let d = dst % (stream.len() + 1);
                stream.splice(d..d, chunk);
            }
        }
    }
}

/// A valid frame stream: each message (or batch of messages) framed with
/// the real length prefix, concatenated as they would appear on a socket.
fn build_stream(msgs: &[Msg], batch: bool) -> Vec<u8> {
    let mut out = Vec::new();
    if batch && !msgs.is_empty() {
        write_frame(&mut out, &encode_msg_batch(msgs), DEFAULT_MAX_FRAME)
            .expect("valid batch frame");
    } else {
        for m in msgs {
            write_frame(&mut out, &encode_msg(m), DEFAULT_MAX_FRAME).expect("valid frame");
        }
    }
    out
}

/// Feeds `stream` to a [`FrameReader`] in fragments and decodes whatever
/// frames come out. Nothing here is allowed to panic; decoded messages
/// must survive an encode→decode round trip bit-for-bit.
fn drive(stream: &[u8], frag: usize) -> Result<(), TestCaseError> {
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    let mut pos = 0;
    let step = frag.max(1);
    loop {
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if let Ok(msgs) = decode_frame_msgs(&frame) {
                        for m in &msgs {
                            let re = encode_msg(m);
                            let back = decode_frame_msgs(&re);
                            prop_assert!(back.is_ok(), "re-decode failed: {:?}", back);
                            prop_assert_eq!(
                                back.unwrap_or_default(),
                                vec![m.clone()],
                                "re-encode round trip"
                            );
                        }
                    }
                }
                Ok(None) => break,
                // A poisoned stream (bad length prefix) ends the
                // connection in production; nothing more to read.
                Err(_) => return Ok(()),
            }
        }
        if pos >= stream.len() {
            return Ok(());
        }
        let end = (pos + step).min(stream.len());
        reader.ingest(&stream[pos..end]);
        pos = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mangled_streams_never_panic_and_survivors_reencode(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        batch in any::<bool>(),
        mangles in proptest::collection::vec(arb_mangle(), 1..5),
        frag in 1usize..32,
    ) {
        let mut stream = build_stream(&msgs, batch);
        for m in &mangles {
            apply(&mut stream, m);
        }
        drive(&stream, frag)?;
    }

    #[test]
    fn clean_streams_decode_every_message(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        batch in any::<bool>(),
        frag in 1usize..32,
    ) {
        let stream = build_stream(&msgs, batch);
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let end = (pos + frag).min(stream.len());
            reader.ingest(&stream[pos..end]);
            pos = end;
            while let Ok(Some(frame)) = reader.next_frame() {
                let msgs_dec = decode_frame_msgs(&frame);
                prop_assert!(msgs_dec.is_ok(), "decode failed: {:?}", msgs_dec);
                decoded.extend(msgs_dec.unwrap_or_default());
            }
        }
        prop_assert_eq!(decoded, msgs);
    }
}
