//! Integration test for request pipelining: one [`PipeClient`] keeps
//! many operations in flight against a real `n = 4`, `b = 1` event-loop
//! cluster, and every completion must be matched back to its submission
//! by operation id — the protocol rounds of different operations
//! interleave freely on the shared sockets, so nothing but the id links
//! a response to its request.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use sstore_core::client::ClientOp;
use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::types::{Consistency, DataId, GroupId, OpId, ServerId};
use sstore_core::{ClientConfig, ServerConfig, ServerNode};
use sstore_net::{
    NetClientConfig, NetCluster, NetServer, NetServerConfig, PipeClient, ServingMode,
};

const N: usize = 4;
const B: usize = 1;
const CLIENTS: u16 = 2;
const KEY_SEED: u64 = 0x7ea1;

fn start_servers(serving: ServingMode) -> (Vec<NetServer>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let (_, verifying) = generate_client_keys(CLIENTS, KEY_SEED);
    let dir = Directory::new(N, B, verifying);
    let servers = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let node = ServerNode::new(ServerId(i as u16), dir.clone(), ServerConfig::default());
            NetServer::start(
                node,
                listener,
                addrs.clone(),
                NetServerConfig {
                    serving,
                    ..NetServerConfig::default()
                },
            )
            .expect("server start")
        })
        .collect();
    (servers, addrs)
}

/// Pumps until every id in `want` has completed (asserting success), or
/// panics at the deadline.
fn pump_all(client: &mut PipeClient, want: &mut HashSet<OpId>, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !want.is_empty() {
        assert!(
            Instant::now() < deadline,
            "{what}: {} operations never completed",
            want.len()
        );
        for done in client.pump_until(Instant::now() + Duration::from_millis(10)) {
            assert!(
                want.remove(&done.op),
                "{what}: completion for unknown or duplicate op {:?}",
                done.op
            );
            assert!(
                done.outcome.is_ok(),
                "{what}: op {:?} failed: {:?}",
                done.op,
                done.outcome
            );
        }
    }
}

#[test]
fn pipelined_operations_complete_out_of_order_matched_by_id() {
    let (servers, addrs) = start_servers(ServingMode::EventLoop);
    let cluster = NetCluster::connect_with(
        addrs,
        B,
        CLIENTS,
        KEY_SEED,
        ClientConfig::default(),
        NetClientConfig::default(),
    );
    let mut client = cluster.pipe_client(0);

    const GROUPS: u32 = 4;
    const PER_GROUP: u64 = 8;

    // Phase 1: connect to every group, all connects in flight at once.
    let mut want: HashSet<OpId> = (0..GROUPS)
        .map(|g| {
            client.submit(ClientOp::Connect {
                group: GroupId(g),
                recover: false,
            })
        })
        .collect();
    pump_all(&mut client, &mut want, "connect");

    // Phase 2: a burst of writes spanning all groups, all pipelined.
    // Track which id wrote which value so reads can verify payloads.
    let mut values: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut want: HashSet<OpId> = HashSet::new();
    for g in 0..GROUPS {
        for slot in 0..PER_GROUP {
            let data = u64::from(g) << 32 | slot;
            let value = format!("v-{g}-{slot}").into_bytes();
            values.insert(data, value.clone());
            want.insert(client.submit(ClientOp::Write {
                data: DataId(data),
                group: GroupId(g),
                consistency: Consistency::Mrc,
                value,
            }));
        }
    }
    let burst = want.len();
    assert!(
        client.inflight() >= burst,
        "writes should pipeline, not serialize"
    );
    pump_all(&mut client, &mut want, "write burst");

    // Phase 3: interleaved reads and writes in one burst; completions
    // arrive in whatever order the quorums finish, matched by id.
    let mut reads: HashMap<OpId, u64> = HashMap::new();
    let mut want: HashSet<OpId> = HashSet::new();
    for g in 0..GROUPS {
        for slot in 0..PER_GROUP {
            let data = u64::from(g) << 32 | slot;
            if (slot + u64::from(g)) % 2 == 0 {
                let op = client.submit(ClientOp::Read {
                    data: DataId(data),
                    group: GroupId(g),
                    consistency: Consistency::Mrc,
                });
                reads.insert(op, data);
                want.insert(op);
            } else {
                let value = format!("v2-{g}-{slot}").into_bytes();
                values.insert(data, value.clone());
                want.insert(client.submit(ClientOp::Write {
                    data: DataId(data),
                    group: GroupId(g),
                    consistency: Consistency::Mrc,
                    value,
                }));
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !want.is_empty() {
        assert!(Instant::now() < deadline, "mixed burst never completed");
        for done in client.pump_until(Instant::now() + Duration::from_millis(10)) {
            assert!(want.remove(&done.op), "unknown op {:?}", done.op);
            assert!(done.outcome.is_ok(), "op failed: {:?}", done.outcome);
            if let Some(data) = reads.get(&done.op) {
                // A read must return the value its own data id holds —
                // proof the response was matched to the right request.
                let expect = values.get(data).expect("tracked value");
                match &done.outcome {
                    sstore_core::client::Outcome::ReadOk { value, .. } => {
                        assert_eq!(value, expect, "read {data:#x}");
                    }
                    other => panic!("read {data:#x} returned {other:?}"),
                }
            }
        }
    }
    assert_eq!(client.inflight(), 0);

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn two_pipe_clients_multiplex_independently() {
    let (servers, addrs) = start_servers(ServingMode::EventLoop);
    let cluster = NetCluster::connect_with(
        addrs,
        B,
        CLIENTS,
        KEY_SEED,
        ClientConfig::default(),
        NetClientConfig::default(),
    );
    let mut a = cluster.pipe_client(0);
    let mut b = cluster.pipe_client(1);

    for client in [&mut a, &mut b] {
        let mut want: HashSet<OpId> = [client.submit(ClientOp::Connect {
            group: GroupId(0),
            recover: false,
        })]
        .into_iter()
        .collect();
        pump_all(client, &mut want, "connect");
    }

    // Interleave submissions across the two clients (distinct data ids:
    // each client is a distinct writer), then pump both to completion.
    let mut want_a: HashSet<OpId> = HashSet::new();
    let mut want_b: HashSet<OpId> = HashSet::new();
    for slot in 0..6u64 {
        want_a.insert(a.submit(ClientOp::Write {
            data: DataId(0xa000 + slot),
            group: GroupId(0),
            consistency: Consistency::Mrc,
            value: vec![0xaa; 16],
        }));
        want_b.insert(b.submit(ClientOp::Write {
            data: DataId(0xb000 + slot),
            group: GroupId(0),
            consistency: Consistency::Mrc,
            value: vec![0xbb; 16],
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !(want_a.is_empty() && want_b.is_empty()) {
        assert!(Instant::now() < deadline, "multiplexed writes stalled");
        for done in a.pump_until(Instant::now() + Duration::from_millis(5)) {
            assert!(want_a.remove(&done.op), "client a: unknown op");
            assert!(done.outcome.is_ok(), "client a: {:?}", done.outcome);
        }
        for done in b.pump_until(Instant::now() + Duration::from_millis(5)) {
            assert!(want_b.remove(&done.op), "client b: unknown op");
            assert!(done.outcome.is_ok(), "client b: {:?}", done.outcome);
        }
    }

    for server in servers {
        server.shutdown();
    }
}
