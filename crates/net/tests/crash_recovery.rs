//! Crash-recovery integration test for the TCP deployment path: a real
//! `n = 4`, `b = 1` cluster of `sstore-server` *processes* with
//! per-server data dirs. One server is SIGKILLed mid-campaign and
//! restarted at the same directory; the test then removes other
//! servers from the cluster so quorums can only form if the restarted
//! process actually replayed its write-ahead log.
//!
//! Uses the compiled daemon binary (`CARGO_BIN_EXE_sstore-server`), so
//! the kill is a real `SIGKILL` against a separate process — nothing
//! in-process survives it.

#![cfg(unix)]

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_core::ClientConfig;
use sstore_net::{NetClientConfig, NetCluster};

const N: usize = 4;
const B: usize = 1;
const CLIENTS: u16 = 2;
const KEY_SEED: u64 = 0x7ea1;
/// Full multi-writer quorum `2b+1` — with exactly three servers alive,
/// reaching it requires every one of them, recovered server included.
const MW_QUORUM: usize = 2 * B + 1;
const SETUP_DEADLINE: Duration = Duration::from_secs(20);
const OP_DEADLINE: Duration = Duration::from_secs(30);

fn unique_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .subsec_nanos();
    std::env::temp_dir().join(format!("sstore-{tag}-{}-{nanos}", std::process::id()))
}

/// Reserves `N` distinct loopback ports by briefly binding ephemeral
/// listeners. The listeners are dropped before the daemons start; the
/// spawn helper retries, so a lost race for a port is only slow, not
/// fatal.
fn reserve_addrs() -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn peers_arg(addrs: &[SocketAddr]) -> String {
    addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn spawn_server(id: usize, addrs: &[SocketAddr], data_dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sstore-server"))
        .args([
            "--id",
            &id.to_string(),
            "--b",
            &B.to_string(),
            "--listen",
            &addrs[id].to_string(),
            "--peers",
            &peers_arg(addrs),
            "--clients",
            &CLIENTS.to_string(),
            "--key-seed",
            &format!("{KEY_SEED:#x}"),
            "--data-dir",
            &data_dir.display().to_string(),
            "--fsync",
            "always",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sstore-server")
}

/// Spawns server `id` and waits until it accepts TCP connections,
/// respawning if the process dies first (e.g. it lost a bind race for
/// the reserved port).
fn spawn_until_up(id: usize, addrs: &[SocketAddr], data_dir: &Path) -> Child {
    let deadline = Instant::now() + SETUP_DEADLINE;
    let mut child = spawn_server(id, addrs, data_dir);
    loop {
        if TcpStream::connect_timeout(&addrs[id], Duration::from_millis(250)).is_ok() {
            return child;
        }
        if child.try_wait().expect("try_wait").is_some() {
            child = spawn_server(id, addrs, data_dir);
        }
        assert!(
            Instant::now() < deadline,
            "server {id} never came up on {}",
            addrs[id]
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sigkill(mut child: Child) {
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
}

fn cluster_for(addrs: Vec<SocketAddr>) -> NetCluster {
    NetCluster::connect_with(
        addrs,
        B,
        CLIENTS,
        KEY_SEED,
        ClientConfig::default(),
        NetClientConfig {
            request_timeout: Duration::from_secs(10),
            ..NetClientConfig::default()
        },
    )
}

/// Polls `op` with a bounded deadline: server kills and recovery leave
/// transient windows where an op can time out without that being a
/// verdict on correctness.
fn poll_until<T>(what: &str, mut op: impl FnMut() -> Result<T, String>) -> T {
    let deadline = Instant::now() + OP_DEADLINE;
    loop {
        match op() {
            Ok(v) => return v,
            Err(e) => {
                assert!(Instant::now() < deadline, "{what}: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn sigkilled_server_recovers_from_its_data_dir() {
    let base = unique_dir("crash-recovery");
    let dirs: Vec<PathBuf> = (0..N).map(|i| base.join(format!("s{i}"))).collect();
    let addrs = reserve_addrs();
    let mut children: Vec<Option<Child>> = (0..N)
        .map(|i| Some(spawn_until_up(i, &addrs, &dirs[i])))
        .collect();

    let g = GroupId(1);
    let cluster = cluster_for(addrs.clone());
    let mut alice = cluster.client(0);
    alice.connect(g, false).expect("connect");

    // Durable writes all four servers log: a single-writer item, a
    // causal item, and a multi-writer item.
    alice
        .write(DataId(1), g, Consistency::Mrc, b"pre-crash".to_vec())
        .expect("mrc write");
    alice
        .write(DataId(2), g, Consistency::Cc, b"pre-crash causal".to_vec())
        .expect("cc write");
    alice
        .mw_write(DataId(9), g, b"pre-crash multi".to_vec())
        .expect("mw write");
    let (ts1, v) = alice
        .read(DataId(1), g, Consistency::Mrc)
        .expect("read back");
    assert_eq!(v, b"pre-crash");

    // SIGKILL server 2 mid-campaign; with n = 4, b = 1 the cluster
    // keeps serving, and new writes land only on the survivors.
    sigkill(children[2].take().expect("server 2 running"));
    poll_until("mrc write with server 2 down", || {
        alice
            .write(DataId(3), g, Consistency::Mrc, b"during outage".to_vec())
            .map_err(|e| format!("{e:?}"))
    });
    drop(alice);

    // Restart server 2 at the same data dir and port: it must replay
    // its WAL before accepting connections.
    children[2] = Some(spawn_until_up(2, &addrs, &dirs[2]));

    // Fresh client with fresh connections (the old sockets to server 2
    // died with the process).
    let cluster2 = cluster_for(addrs.clone());
    let mut bob = cluster2.client(1);
    bob.connect(g, false).expect("bob connect");

    // Take server 3 out: the multi-writer quorum 2b+1 = 3 now needs
    // every live server — including the recovered one, which only
    // knows the pre-crash item from its disk.
    sigkill(children[3].take().expect("server 3 running"));
    let confirmations = poll_until("mw read needing the recovered server", || {
        match bob.mw_read(DataId(9), g, Consistency::Mrc) {
            Ok((_, v, confirmations)) => {
                assert_eq!(v, b"pre-crash multi", "mw value must survive recovery");
                if confirmations >= MW_QUORUM {
                    Ok(confirmations)
                } else {
                    Err(format!("only {confirmations} confirmations so far"))
                }
            }
            Err(e) => Err(format!("{e:?}")),
        }
    });
    assert!(confirmations >= MW_QUORUM);

    // Take server 0 out too, leaving servers 1 and 2. The pre-crash
    // items now have b+1 = 2 live holders only because server 2
    // replayed them: a correct read here *proves* recovery, and a
    // wiped server 2 could never produce it.
    sigkill(children[0].take().expect("server 0 running"));
    let (ts_after, v) = poll_until("read served by the recovered server", || {
        bob.read(DataId(1), g, Consistency::Mrc)
            .map_err(|e| format!("{e:?}"))
    });
    assert_eq!(v, b"pre-crash");
    assert!(
        ts_after.is_at_least(&ts1),
        "timestamps must not regress across recovery: {ts_after:?} < {ts1:?}"
    );
    assert_ne!(ts_after, Timestamp::GENESIS);
    let (_, v) = poll_until("causal read served by the recovered server", || {
        bob.read(DataId(2), g, Consistency::Mrc)
            .map_err(|e| format!("{e:?}"))
    });
    assert_eq!(v, b"pre-crash causal");

    drop(bob);
    for child in children.into_iter().flatten() {
        sigkill(child);
    }
    let _ = std::fs::remove_dir_all(&base);
}
