//! Real-time threaded transport for the secure store.
//!
//! The same sans-I/O state machines that run inside the deterministic
//! simulator (`sstore-core`) run here on actual OS threads connected by
//! channels: one thread per server, blocking client handles for
//! applications. This is the deployment-shaped path used by the examples —
//! protocol logic is byte-for-byte identical to the simulated one.
//!
//! ```
//! use sstore_transport::LocalCluster;
//! use sstore_core::types::{Consistency, DataId, GroupId};
//!
//! let cluster = LocalCluster::start(4, 1, 2);
//! let mut alice = cluster.client(0);
//! let group = GroupId(1);
//! alice.connect(group, false).unwrap();
//! alice.write(DataId(1), group, Consistency::Mrc, b"hello".to_vec()).unwrap();
//! let (_, value) = alice.read(DataId(1), group, Consistency::Mrc).unwrap();
//! assert_eq!(value, b"hello");
//! alice.disconnect(group).unwrap();
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_core::client::{ClientCore, ClientOp, OpResult, Outcome, Output};
use sstore_core::config::{ClientConfig, ServerConfig};
use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::server::{Addr, ServerNode};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, ServerId, Timestamp};
use sstore_core::wire::Msg;
use sstore_crypto::schnorr::SigningKey;
use sstore_simnet::SimTime;

/// An envelope on a node's inbox.
// `Deliver` dwarfs `Stop`, but envelopes are moved straight into per-node
// channels and never stored in bulk, so boxing would only add a hop.
#[allow(clippy::large_enum_variant)]
enum Env {
    Deliver(Addr, Msg),
    Stop,
}

/// Shared routing table: who to hand an envelope to.
struct Router {
    start: Instant,
    servers: Vec<Sender<Env>>,
    clients: RwLock<HashMap<ClientId, Sender<Env>>>,
}

impl Router {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn route(&self, from: Addr, to: Addr, msg: Msg) {
        let env = Env::Deliver(from, msg);
        match to {
            Addr::Server(s) => {
                if let Some(tx) = self.servers.get(s.0 as usize) {
                    let _ = tx.send(env);
                }
            }
            Addr::Client(c) => {
                if let Some(tx) = self.clients.read().get(&c) {
                    let _ = tx.send(env);
                }
            }
        }
    }
}

fn server_loop(mut node: ServerNode, rx: Receiver<Env>, router: Arc<Router>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let me = Addr::Server(node.id());
    let period = Duration::from_micros(node.gossip_period().as_micros().max(1));
    let mut next_gossip = Instant::now() + period;
    loop {
        let timeout = next_gossip.saturating_duration_since(Instant::now());
        match rx.recv_timeout(timeout) {
            Ok(Env::Deliver(from, msg)) => {
                for (to, out) in node.handle(from, msg, router.now()) {
                    router.route(me, to, out);
                }
            }
            Ok(Env::Stop) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                for (to, out) in node.on_gossip_timer(router.now(), &mut rng) {
                    router.route(me, to, out);
                }
                next_gossip = Instant::now() + period;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Error returned by blocking client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The operation could not assemble its quorum.
    Unavailable,
    /// The read found only values older than the client's context.
    Stale,
    /// A multi-writer read exposed an equivocating writer.
    FaultyWriter,
    /// The cluster has shut down.
    Disconnected,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Unavailable => write!(f, "quorum unavailable"),
            StoreError::Stale => write!(f, "only stale copies reachable"),
            StoreError::FaultyWriter => write!(f, "writer equivocation detected"),
            StoreError::Disconnected => write!(f, "cluster has shut down"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The blocking client API shared by every deployment path.
///
/// Applications written against this trait run unchanged on the threaded
/// in-process transport ([`SyncClient`]) and on the TCP socket transport
/// (`sstore-net`'s `NetClient`): same operations, same [`StoreError`]
/// surface, same blocking semantics. Examples and tests can therefore be
/// generic over *where* the cluster actually lives.
pub trait StoreHandle {
    /// Starts a session for `group`; `recover` reconstructs the context
    /// from server metadata instead of reading the stored copy.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    fn connect(&mut self, group: GroupId, recover: bool) -> Result<OpResult, StoreError>;

    /// Stores the context and ends the session.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    fn disconnect(&mut self, group: GroupId) -> Result<OpResult, StoreError>;

    /// Single-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `b+1` servers cannot be reached.
    fn write(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError>;

    /// Single-writer read; returns `(timestamp, value)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Stale`] when only older-than-context copies are
    /// reachable; [`StoreError::Unavailable`] when no quorum forms.
    fn read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>), StoreError>;

    /// Multi-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `2b+1` servers cannot be reached.
    fn mw_write(
        &mut self,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError>;

    /// Multi-writer read; returns `(timestamp, value, confirmations)`.
    ///
    /// # Errors
    ///
    /// Same as [`StoreHandle::read`], plus [`StoreError::FaultyWriter`]
    /// when the read exposes writer equivocation.
    fn mw_read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>, usize), StoreError>;

    /// Drops all volatile state as if the process crashed (then use
    /// `connect(group, true)` to reconstruct).
    fn simulate_crash(&mut self);

    /// The client's current context for `group`.
    fn context(&self, group: GroupId) -> sstore_core::Context;
}

/// A blocking client handle bound to one [`LocalCluster`].
pub struct SyncClient {
    core: ClientCore,
    rx: Receiver<Env>,
    router: Arc<Router>,
    rng: StdRng,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
}

impl SyncClient {
    /// Runs one operation to completion.
    fn run_op(&mut self, op: ClientOp) -> Result<OpResult, StoreError> {
        let now = self.router.now();
        let (op_id, out) = self.core.begin(op, now, &mut self.rng);
        if let Some(r) = self.dispatch(out, op_id) {
            return Self::map_result(r);
        }
        let hard_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            // Next client-protocol timer, if any.
            let wake = self
                .timers
                .peek()
                .map(|std::cmp::Reverse((t, _))| *t)
                .unwrap_or(hard_deadline);
            let timeout = wake
                .min(hard_deadline)
                .saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(Env::Deliver(Addr::Server(sid), msg)) => {
                    let now = self.router.now();
                    let out = self.core.on_message(sid, msg, now);
                    if let Some(r) = self.dispatch(out, op_id) {
                        return Self::map_result(r);
                    }
                }
                Ok(Env::Deliver(Addr::Client(_), _)) => {}
                Ok(Env::Stop) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(StoreError::Disconnected)
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= hard_deadline {
                        return Err(StoreError::Unavailable);
                    }
                    // Fire due protocol timers.
                    while let Some(std::cmp::Reverse((t, token))) = self.timers.peek().copied() {
                        if t > Instant::now() {
                            break;
                        }
                        self.timers.pop();
                        let now = self.router.now();
                        let out = self.core.on_timeout(token, now);
                        if let Some(r) = self.dispatch(out, op_id) {
                            return Self::map_result(r);
                        }
                    }
                }
            }
        }
    }

    /// Sends effects; returns the result if `op_id` completed.
    fn dispatch(&mut self, out: Output, op_id: sstore_core::types::OpId) -> Option<OpResult> {
        let me = Addr::Client(self.core.id());
        for (to, msg) in out.sends {
            self.router.route(me, Addr::Server(to), msg);
        }
        for (delay, token) in out.timers {
            let at = Instant::now() + Duration::from_micros(delay.as_micros());
            self.timers.push(std::cmp::Reverse((at, token)));
        }
        out.done.into_iter().find(|r| r.op == op_id)
    }

    fn map_result(r: OpResult) -> Result<OpResult, StoreError> {
        match &r.outcome {
            Outcome::Unavailable => Err(StoreError::Unavailable),
            Outcome::Stale { .. } => Err(StoreError::Stale),
            Outcome::FaultyWriterDetected { .. } => Err(StoreError::FaultyWriter),
            _ => Ok(r),
        }
    }

    /// Starts a session for `group` ([`ClientOp::Connect`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    pub fn connect(&mut self, group: GroupId, recover: bool) -> Result<OpResult, StoreError> {
        self.run_op(ClientOp::Connect { group, recover })
    }

    /// Stores the context and ends the session.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the context quorum cannot form.
    pub fn disconnect(&mut self, group: GroupId) -> Result<OpResult, StoreError> {
        self.run_op(ClientOp::Disconnect { group })
    }

    /// Single-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `b+1` servers cannot be reached.
    pub fn write(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        let r = self.run_op(ClientOp::Write {
            data,
            group,
            consistency,
            value,
        })?;
        match r.outcome {
            Outcome::WriteOk { ts } => Ok(ts),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Single-writer read; returns `(timestamp, value)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Stale`] when only older-than-context copies are
    /// reachable; [`StoreError::Unavailable`] when no quorum forms.
    pub fn read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>), StoreError> {
        let r = self.run_op(ClientOp::Read {
            data,
            group,
            consistency,
        })?;
        match r.outcome {
            Outcome::ReadOk { ts, value, .. } => Ok((ts, value)),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Multi-writer write.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if `2b+1` servers cannot be reached.
    pub fn mw_write(
        &mut self,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        let r = self.run_op(ClientOp::MwWrite { data, group, value })?;
        match r.outcome {
            Outcome::WriteOk { ts } => Ok(ts),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Multi-writer read; returns `(timestamp, value, confirmations)`.
    ///
    /// # Errors
    ///
    /// Same as [`SyncClient::read`], plus [`StoreError::FaultyWriter`] when
    /// the read exposes writer equivocation.
    pub fn mw_read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>, usize), StoreError> {
        let r = self.run_op(ClientOp::MwRead {
            data,
            group,
            consistency,
        })?;
        match r.outcome {
            Outcome::ReadOk {
                ts,
                value,
                confirmations,
            } => Ok((ts, value, confirmations)),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Drops all volatile state as if the process crashed (then use
    /// `connect(group, true)` to reconstruct).
    pub fn simulate_crash(&mut self) {
        self.core.crash();
    }

    /// The client's current context for `group`.
    pub fn context(&self, group: GroupId) -> sstore_core::Context {
        self.core.context(group)
    }
}

impl StoreHandle for SyncClient {
    fn connect(&mut self, group: GroupId, recover: bool) -> Result<OpResult, StoreError> {
        SyncClient::connect(self, group, recover)
    }

    fn disconnect(&mut self, group: GroupId) -> Result<OpResult, StoreError> {
        SyncClient::disconnect(self, group)
    }

    fn write(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        SyncClient::write(self, data, group, consistency, value)
    }

    fn read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>), StoreError> {
        SyncClient::read(self, data, group, consistency)
    }

    fn mw_write(
        &mut self,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
    ) -> Result<Timestamp, StoreError> {
        SyncClient::mw_write(self, data, group, value)
    }

    fn mw_read(
        &mut self,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
    ) -> Result<(Timestamp, Vec<u8>, usize), StoreError> {
        SyncClient::mw_read(self, data, group, consistency)
    }

    fn simulate_crash(&mut self) {
        SyncClient::simulate_crash(self)
    }

    fn context(&self, group: GroupId) -> sstore_core::Context {
        SyncClient::context(self, group)
    }
}

/// A local cluster of server threads plus registered clients.
pub struct LocalCluster {
    router: Arc<Router>,
    handles: Vec<JoinHandle<()>>,
    dir: Arc<Directory>,
    signing: HashMap<ClientId, SigningKey>,
    client_cfg: ClientConfig,
}

impl LocalCluster {
    /// Starts `n` server threads tolerating `b` faults, with keys for
    /// `clients` clients. Default server/client configs.
    pub fn start(n: usize, b: usize, clients: u16) -> Self {
        Self::start_with(
            n,
            b,
            clients,
            ServerConfig::default(),
            ClientConfig::default(),
        )
    }

    /// Starts a cluster with explicit configurations.
    ///
    /// # Panics
    ///
    /// Panics if `(n, b)` is invalid.
    pub fn start_with(
        n: usize,
        b: usize,
        clients: u16,
        server_cfg: ServerConfig,
        client_cfg: ClientConfig,
    ) -> Self {
        let (signing, verifying) = generate_client_keys(clients, 0x7ea1);
        let dir = Directory::new(n, b, verifying);
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let router = Arc::new(Router {
            start: Instant::now(),
            servers: txs,
            clients: RwLock::new(HashMap::new()),
        });
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in rxs.into_iter().enumerate() {
            let node = ServerNode::new(ServerId(i as u16), dir.clone(), server_cfg.clone());
            let router = router.clone();
            handles.push(std::thread::spawn(move || {
                server_loop(node, rx, router, 0xbeef + i as u64)
            }));
        }
        LocalCluster {
            router,
            handles,
            dir,
            signing,
            client_cfg,
        }
    }

    /// The cluster directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }

    /// Kills server `i`'s thread (simulates a crash fault). Operations
    /// keep working as long as at most `b` servers are killed.
    pub fn kill_server(&self, i: usize) {
        if let Some(tx) = self.router.servers.get(i) {
            let _ = tx.send(Env::Stop);
        }
    }

    /// Creates the blocking handle for client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` has no registered key (i.e. `i >= clients`).
    pub fn client(&self, i: u16) -> SyncClient {
        let id = ClientId(i);
        let key = self
            .signing
            .get(&id)
            .expect("client key registered")
            .clone();
        let (tx, rx) = unbounded();
        self.router.clients.write().insert(id, tx);
        SyncClient {
            core: ClientCore::new(id, self.dir.clone(), self.client_cfg.clone(), key),
            rx,
            router: self.router.clone(),
            rng: StdRng::seed_from_u64(0xc0ffee + i as u64),
            timers: BinaryHeap::new(),
        }
    }

    /// Stops all server threads.
    pub fn shutdown(self) {
        for tx in &self.router.servers {
            let _ = tx.send(Env::Stop);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_over_threads() {
        let cluster = LocalCluster::start(4, 1, 1);
        let mut c = cluster.client(0);
        let g = GroupId(1);
        c.connect(g, false).unwrap();
        c.write(DataId(1), g, Consistency::Mrc, b"threaded".to_vec())
            .unwrap();
        let (ts, v) = c.read(DataId(1), g, Consistency::Mrc).unwrap();
        assert_eq!(v, b"threaded");
        assert_eq!(ts, Timestamp::Version(1));
        c.disconnect(g).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn two_clients_share_single_writer_data() {
        let cluster = LocalCluster::start(4, 1, 2);
        let g = GroupId(2);
        let mut writer = cluster.client(0);
        writer.connect(g, false).unwrap();
        writer
            .write(DataId(5), g, Consistency::Mrc, b"bulletin".to_vec())
            .unwrap();
        // Give dissemination a moment so the reader's quorum sees it.
        std::thread::sleep(Duration::from_millis(600));
        let mut reader = cluster.client(1);
        reader.connect(g, false).unwrap();
        let (_, v) = reader.read(DataId(5), g, Consistency::Mrc).unwrap();
        assert_eq!(v, b"bulletin");
        cluster.shutdown();
    }

    #[test]
    fn crash_and_reconstruct() {
        let cluster = LocalCluster::start(4, 1, 1);
        let g = GroupId(3);
        let mut c = cluster.client(0);
        c.connect(g, false).unwrap();
        c.write(DataId(1), g, Consistency::Mrc, b"precious".to_vec())
            .unwrap();
        c.simulate_crash();
        c.connect(g, true).unwrap();
        assert_eq!(c.context(g).len(), 1);
        let (_, v) = c.read(DataId(1), g, Consistency::Mrc).unwrap();
        assert_eq!(v, b"precious");
        cluster.shutdown();
    }

    #[test]
    fn survives_killed_server() {
        let cluster = LocalCluster::start(4, 1, 1);
        cluster.kill_server(2);
        let g = GroupId(9);
        let mut c = cluster.client(0);
        c.connect(g, false).unwrap();
        c.write(DataId(1), g, Consistency::Mrc, b"still here".to_vec())
            .unwrap();
        let (_, v) = c.read(DataId(1), g, Consistency::Mrc).unwrap();
        assert_eq!(v, b"still here");
        c.disconnect(g).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn works_through_store_handle_trait() {
        // Code generic over StoreHandle runs identically on any transport.
        fn exercise(h: &mut dyn StoreHandle, g: GroupId) {
            h.connect(g, false).unwrap();
            h.write(DataId(1), g, Consistency::Mrc, b"generic".to_vec())
                .unwrap();
            let (_, v) = h.read(DataId(1), g, Consistency::Mrc).unwrap();
            assert_eq!(v, b"generic");
            h.disconnect(g).unwrap();
        }
        let cluster = LocalCluster::start(4, 1, 1);
        let mut c = cluster.client(0);
        exercise(&mut c, GroupId(8));
        cluster.shutdown();
    }

    #[test]
    fn multi_writer_over_threads() {
        let cluster = LocalCluster::start(4, 1, 2);
        let g = GroupId(4);
        let mut a = cluster.client(0);
        a.connect(g, false).unwrap();
        a.mw_write(DataId(9), g, b"from-a".to_vec()).unwrap();
        let (_, v, confirmations) = a.mw_read(DataId(9), g, Consistency::Cc).unwrap();
        assert_eq!(v, b"from-a");
        assert!(confirmations >= 2);
        cluster.shutdown();
    }
}
