//! Per-run network accounting: message counts and bytes, by message kind.
//!
//! The paper's evaluation (§6) is phrased almost entirely in message counts
//! ("a total of `2⌈(n+b+1)/2⌉` messages will be exchanged…"). These counters
//! are what the benchmark harness compares against those formulas.

use std::collections::BTreeMap;

/// Aggregated network statistics for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted to the network (sent).
    pub total_messages: u64,
    /// Messages actually delivered.
    pub delivered_messages: u64,
    /// Messages lost to drops or partitions.
    pub dropped_messages: u64,
    /// Total bytes submitted.
    pub total_bytes: u64,
    sent_by_kind: BTreeMap<&'static str, u64>,
    bytes_by_kind: BTreeMap<&'static str, u64>,
    delivered_by_kind: BTreeMap<&'static str, u64>,
}

impl NetStats {
    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize) {
        self.total_messages += 1;
        self.total_bytes += bytes as u64;
        *self.sent_by_kind.entry(kind).or_default() += 1;
        *self.bytes_by_kind.entry(kind).or_default() += bytes as u64;
    }

    pub(crate) fn record_delivery(&mut self, kind: &'static str) {
        self.delivered_messages += 1;
        *self.delivered_by_kind.entry(kind).or_default() += 1;
    }

    pub(crate) fn record_drop(&mut self, _kind: &'static str) {
        self.dropped_messages += 1;
    }

    /// Messages of `kind` submitted to the network.
    pub fn sent_by_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Bytes of `kind` submitted to the network.
    pub fn bytes_by_kind(&self, kind: &str) -> u64 {
        self.bytes_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Messages of `kind` delivered.
    pub fn delivered_by_kind(&self, kind: &str) -> u64 {
        self.delivered_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Iterates `(kind, sent-count)` pairs in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sent_by_kind.iter().map(|(&k, &v)| (k, v))
    }

    /// Difference against an earlier snapshot: counts accumulated since.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let map_diff = |a: &BTreeMap<&'static str, u64>, b: &BTreeMap<&'static str, u64>| {
            a.iter()
                .map(|(&k, &v)| (k, v - b.get(k).copied().unwrap_or(0)))
                .filter(|&(_, v)| v > 0)
                .collect()
        };
        NetStats {
            total_messages: self.total_messages - earlier.total_messages,
            delivered_messages: self.delivered_messages - earlier.delivered_messages,
            dropped_messages: self.dropped_messages - earlier.dropped_messages,
            total_bytes: self.total_bytes - earlier.total_bytes,
            sent_by_kind: map_diff(&self.sent_by_kind, &earlier.sent_by_kind),
            bytes_by_kind: map_diff(&self.bytes_by_kind, &earlier.bytes_by_kind),
            delivered_by_kind: map_diff(&self.delivered_by_kind, &earlier.delivered_by_kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = NetStats::default();
        s.record_send("read", 100);
        s.record_send("read", 100);
        s.record_send("write", 50);
        s.record_delivery("read");
        s.record_drop("write");
        assert_eq!(s.total_messages, 3);
        assert_eq!(s.total_bytes, 250);
        assert_eq!(s.sent_by_kind("read"), 2);
        assert_eq!(s.bytes_by_kind("read"), 200);
        assert_eq!(s.delivered_by_kind("read"), 1);
        assert_eq!(s.dropped_messages, 1);
        assert_eq!(s.sent_by_kind("missing"), 0);
    }

    #[test]
    fn kinds_iterates_sorted() {
        let mut s = NetStats::default();
        s.record_send("b", 1);
        s.record_send("a", 1);
        let kinds: Vec<_> = s.kinds().collect();
        assert_eq!(kinds, vec![("a", 1), ("b", 1)]);
    }

    #[test]
    fn since_computes_delta() {
        let mut s = NetStats::default();
        s.record_send("x", 10);
        let snapshot = s.clone();
        s.record_send("x", 10);
        s.record_send("y", 5);
        let d = s.since(&snapshot);
        assert_eq!(d.total_messages, 2);
        assert_eq!(d.sent_by_kind("x"), 1);
        assert_eq!(d.sent_by_kind("y"), 1);
        assert_eq!(d.total_bytes, 15);
    }
}
