//! Message latency models.

use rand::rngs::StdRng;
use rand::Rng;

use crate::SimTime;

/// How long a message takes to cross the network.
///
/// The paper's §6 argues its protocols win "specially in an environment
/// where communication latencies are high across the server replicas" — the
/// LAN/WAN presets here let the benchmark harness show exactly that
/// crossover.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Fixed delay for every message.
    Constant(SimTime),
    /// Uniformly distributed delay in `[min, max]`.
    Uniform {
        /// Minimum one-way delay.
        min: SimTime,
        /// Maximum one-way delay.
        max: SimTime,
    },
    /// Mostly-uniform base delay with occasional spikes: with probability
    /// `spike_probability` the delay is multiplied by `spike_factor`.
    /// Approximates heavy-tailed internet behaviour without needing a full
    /// distribution library.
    Spiky {
        /// Minimum base delay.
        min: SimTime,
        /// Maximum base delay.
        max: SimTime,
        /// Probability of a spike in `[0, 1)`.
        spike_probability: f64,
        /// Multiplier applied to spiked samples.
        spike_factor: u32,
    },
}

impl LatencyModel {
    /// LAN preset: 100–300 µs.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: SimTime::from_micros(100),
            max: SimTime::from_micros(300),
        }
    }

    /// WAN preset: 40–80 ms.
    pub fn wan() -> Self {
        LatencyModel::Uniform {
            min: SimTime::from_millis(40),
            max: SimTime::from_millis(80),
        }
    }

    /// Heavy-tailed WAN: 40–80 ms with 1% of messages taking 5× longer.
    pub fn wan_heavy_tail() -> Self {
        LatencyModel::Spiky {
            min: SimTime::from_millis(40),
            max: SimTime::from_millis(80),
            spike_probability: 0.01,
            spike_factor: 5,
        }
    }

    /// Draws a delay sample.
    pub fn sample(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                SimTime::from_micros(if hi > lo { rng.gen_range(lo..=hi) } else { lo })
            }
            LatencyModel::Spiky {
                min,
                max,
                spike_probability,
                spike_factor,
            } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                let base = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                let mult = if rng.gen::<f64>() < spike_probability {
                    spike_factor as u64
                } else {
                    1
                };
                SimTime::from_micros(base * mult)
            }
        }
    }

    /// Mean one-way delay implied by the model (spikes included).
    pub fn mean(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { min, max } => {
                SimTime::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Spiky {
                min,
                max,
                spike_probability,
                spike_factor,
            } => {
                let base = (min.as_micros() + max.as_micros()) as f64 / 2.0;
                let mean = base * (1.0 - spike_probability)
                    + base * spike_factor as f64 * spike_probability;
                SimTime::from_micros(mean as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimTime::from_millis(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimTime::from_millis(5));
        }
        assert_eq!(m.mean(), SimTime::from_millis(5));
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::lan();
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= SimTime::from_micros(100) && s <= SimTime::from_micros(300));
        }
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        assert_eq!(LatencyModel::wan().mean(), SimTime::from_millis(60));
    }

    #[test]
    fn spiky_produces_spikes() {
        let m = LatencyModel::Spiky {
            min: SimTime::from_millis(10),
            max: SimTime::from_millis(10),
            spike_probability: 0.5,
            spike_factor: 10,
        };
        let mut r = rng();
        let samples: Vec<SimTime> = (0..200).map(|_| m.sample(&mut r)).collect();
        assert!(samples.iter().any(|&s| s == SimTime::from_millis(100)));
        assert!(samples.iter().any(|&s| s == SimTime::from_millis(10)));
        // Mean: 10ms * 0.5 + 100ms * 0.5 = 55ms.
        assert_eq!(m.mean(), SimTime::from_millis(55));
    }

    #[test]
    fn degenerate_uniform_range() {
        let m = LatencyModel::Uniform {
            min: SimTime::from_millis(7),
            max: SimTime::from_millis(7),
        };
        assert_eq!(m.sample(&mut rng()), SimTime::from_millis(7));
    }
}
