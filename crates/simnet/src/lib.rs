//! Deterministic discrete-event network simulator.
//!
//! The secure-store paper defers measurement to "simulations as well as
//! actual implementations" (§6). This crate is that simulator: protocol
//! participants are *actors* (pure state machines), the network is an event
//! queue with pluggable latency models, message drops and partitions, and
//! every run is exactly reproducible from its seed.
//!
//! The design is sans-I/O: the same actor state machines run here and on the
//! real threaded transport (`sstore-transport`).
//!
//! # Example
//!
//! ```
//! use sstore_simnet::{Actor, Context, Message, NodeId, SimConfig, Simulation};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn kind(&self) -> &'static str { "ping" }
//!     fn size_bytes(&self) -> usize { 4 }
//! }
//!
//! struct Echo;
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         if msg.0 > 0 { ctx.send(from, Ping(msg.0 - 1)); }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::lan(42));
//! let a = sim.add_node(Echo);
//! let b = sim.add_node(Echo);
//! sim.post(a, b, Ping(10));
//! sim.run_to_quiescence();
//! assert_eq!(sim.stats().total_messages, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod stats;
mod time;

pub use latency::LatencyModel;
pub use stats::NetStats;
pub use time::SimTime;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies a node (actor) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Trait for simulated protocol messages.
///
/// `kind` labels the message for per-type accounting; `size_bytes` feeds the
/// bandwidth counters (a reasonable serialized-size estimate is fine).
pub trait Message: Clone + std::fmt::Debug {
    /// Short static label for accounting (e.g. `"ctx-read-req"`).
    fn kind(&self) -> &'static str;
    /// Estimated wire size in bytes.
    fn size_bytes(&self) -> usize;
}

/// A protocol participant: a state machine driven by messages and timers.
///
/// Implementations must be deterministic given the context RNG — all
/// randomness must come from [`Context::rng`].
pub trait Actor<M: Message> {
    /// Handles a message delivered from `from`.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Handles a timer previously set with [`Context::set_timer`].
    fn on_timer(&mut self, _timer: u64, _ctx: &mut Context<'_, M>) {}

    /// Downcasting hook so harnesses can inspect concrete actor state via
    /// [`Simulation::with_node`]. Override to return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Effect sink handed to actors; collects sends and timers, exposes the
/// node's identity, the current simulated time and the deterministic RNG.
pub struct Context<'a, M: Message> {
    node: NodeId,
    now: SimTime,
    rng: &'a mut StdRng,
    sends: Vec<(NodeId, M)>,
    timers: Vec<(SimTime, u64)>,
}

impl<'a, M: Message> Context<'a, M> {
    /// The identity of the acting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-run random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues `msg` for delivery to `to` (latency applied by the network).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Schedules `on_timer(token)` to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay, token));
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { token: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Link connectivity state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkState {
    /// Messages flow with the configured latency model.
    #[default]
    Up,
    /// Messages are silently discarded (network partition).
    Down,
}

/// A scheduled change to the network or node population, applied at a fixed
/// simulated time via [`Simulation::schedule_net_event`]. This is what the
/// chaos harness uses to script partitions forming and healing, servers
/// crashing and restarting, and loss/latency phases — all deterministically
/// replayable from the schedule alone.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// Sets the directed link `from → to`.
    SetLink(NodeId, NodeId, LinkState),
    /// Cuts both directions between the pair.
    PartitionPair(NodeId, NodeId),
    /// Restores every link to [`LinkState::Up`].
    HealAll,
    /// Takes a node down: deliveries to it are dropped and its timers are
    /// deferred until it comes back up. Models a process crash/pause with
    /// stable storage — the actor's state survives.
    NodeDown(NodeId),
    /// Brings a node back up; deferred timers resume shortly after.
    NodeUp(NodeId),
    /// Changes the global message-drop probability.
    SetDropProbability(f64),
    /// Swaps the latency model applied to subsequently sent messages.
    SetLatency(LatencyModel),
}

/// How long a down node's timer events are pushed back before re-checking.
/// Small enough that a restarted node resumes its periodic work promptly,
/// large enough not to flood the queue while it is down.
const DOWN_TIMER_DEFER: SimTime = SimTime::from_millis(5);

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Probability in `[0, 1)` that any message is dropped.
    pub drop_probability: f64,
}

impl SimConfig {
    /// LAN preset: ~0.2 ms links, no drops.
    pub fn lan(seed: u64) -> Self {
        SimConfig {
            seed,
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
        }
    }

    /// WAN preset: 40–80 ms links, no drops.
    pub fn wan(seed: u64) -> Self {
        SimConfig {
            seed,
            latency: LatencyModel::wan(),
            drop_probability: 0.0,
        }
    }

    /// Lossy-WAN preset: WAN latency plus the given drop probability.
    pub fn lossy_wan(seed: u64, drop_probability: f64) -> Self {
        SimConfig {
            seed,
            latency: LatencyModel::wan(),
            drop_probability,
        }
    }
}

/// The discrete-event simulator.
///
/// Nodes are added with [`Simulation::add_node`]; external stimuli are
/// injected with [`Simulation::post`]; the run advances with
/// [`Simulation::step`], [`Simulation::run_until`] or
/// [`Simulation::run_to_quiescence`].
pub struct Simulation<M: Message> {
    nodes: Vec<Box<dyn Actor<M>>>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    links: HashMap<(NodeId, NodeId), LinkState>,
    /// Nodes currently down (see [`NetEvent::NodeDown`]).
    down: Vec<bool>,
    /// Scheduled network events, ordered by `(at, seq)`.
    net_queue: BinaryHeap<Reverse<ScheduledNetEvent>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    config: SimConfig,
    stats: NetStats,
    events_processed: u64,
}

struct ScheduledNetEvent {
    at: SimTime,
    seq: u64,
    event: NetEvent,
}

impl PartialEq for ScheduledNetEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledNetEvent {}
impl PartialOrd for ScheduledNetEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledNetEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<M: Message> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<M: Message> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            links: HashMap::new(),
            down: Vec::new(),
            net_queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: NetStats::default(),
            events_processed: 0,
        }
    }

    /// Registers an actor and returns its node id.
    pub fn add_node(&mut self, actor: impl Actor<M> + 'static) -> NodeId {
        self.nodes.push(Box::new(actor));
        self.down.push(false);
        NodeId(self.nodes.len() - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the network statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Sets the state of the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, state: LinkState) {
        self.links.insert((from, to), state);
    }

    /// Cuts both directions between `a` and `b`.
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.set_link(a, b, LinkState::Down);
        self.set_link(b, a, LinkState::Down);
    }

    /// Restores all links.
    pub fn heal_all(&mut self) {
        self.links.clear();
    }

    /// Schedules `event` to be applied at absolute simulated time `at`
    /// (clamped to now). Events fire in `(at, insertion)` order, interleaved
    /// deterministically with message deliveries and timers.
    pub fn schedule_net_event(&mut self, at: SimTime, event: NetEvent) {
        self.seq += 1;
        self.net_queue.push(Reverse(ScheduledNetEvent {
            at: at.max(self.now),
            seq: self.seq,
            event,
        }));
    }

    /// Applies a network event immediately.
    pub fn apply_net_event(&mut self, event: NetEvent) {
        match event {
            NetEvent::SetLink(from, to, state) => self.set_link(from, to, state),
            NetEvent::PartitionPair(a, b) => self.partition_pair(a, b),
            NetEvent::HealAll => self.heal_all(),
            NetEvent::NodeDown(n) => {
                if let Some(d) = self.down.get_mut(n.0) {
                    *d = true;
                }
            }
            NetEvent::NodeUp(n) => {
                if let Some(d) = self.down.get_mut(n.0) {
                    *d = false;
                }
            }
            NetEvent::SetDropProbability(p) => {
                self.config.drop_probability = p.clamp(0.0, 1.0);
            }
            NetEvent::SetLatency(model) => self.config.latency = model,
        }
    }

    /// Whether `node` is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.get(node.0).copied().unwrap_or(false)
    }

    /// Injects a message from `from` to `to`, subject to the network model.
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.enqueue_send(from, to, msg);
    }

    /// Schedules `on_timer(token)` at `node` after `delay` — used to
    /// bootstrap periodic behaviour (actors have no start hook).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimTime, token: u64) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at: self.now + delay,
            seq: self.seq,
            to: node,
            kind: EventKind::Timer { token },
        }));
    }

    /// Delivers a message to `to` immediately at the current time, bypassing
    /// latency/drop/partition (useful to bootstrap client operations).
    pub fn post_local(&mut self, from: NodeId, to: NodeId, msg: M) {
        let at = self.now;
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            to,
            kind: EventKind::Deliver { from, msg },
        }));
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.stats.record_send(msg.kind(), msg.size_bytes());
        if self.links.get(&(from, to)).copied().unwrap_or_default() == LinkState::Down {
            self.stats.record_drop(msg.kind());
            return;
        }
        if self.config.drop_probability > 0.0
            && self.rng.gen::<f64>() < self.config.drop_probability
        {
            self.stats.record_drop(msg.kind());
            return;
        }
        let delay = self.config.latency.sample(&mut self.rng);
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at: self.now + delay,
            seq: self.seq,
            to,
            kind: EventKind::Deliver { from, msg },
        }));
    }

    /// Earliest pending event time (actor or scheduled network event).
    pub fn next_event_at(&self) -> Option<SimTime> {
        let actor = self.queue.peek().map(|Reverse(e)| e.at);
        let net = self.net_queue.peek().map(|Reverse(e)| e.at);
        match (actor, net) {
            (Some(a), Some(n)) => Some(a.min(n)),
            (a, n) => a.or(n),
        }
    }

    /// Processes the next event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        // Scheduled network events fire before actor events at the same
        // instant, so a partition scheduled at `t` affects deliveries at `t`.
        let net_due = match (self.net_queue.peek(), self.queue.peek()) {
            (Some(Reverse(n)), Some(Reverse(a))) => n.at <= a.at,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if net_due {
            if let Some(Reverse(ev)) = self.net_queue.pop() {
                debug_assert!(ev.at >= self.now, "time went backwards");
                self.now = ev.at;
                self.events_processed += 1;
                self.apply_net_event(ev.event);
            }
            return true;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        let node = ev.to;
        if node.0 >= self.nodes.len() {
            return true; // message to an unknown node: dropped
        }
        if self.is_down(node) {
            match ev.kind {
                // A down node's inbound traffic is lost, exactly like a
                // crashed process behind a live network interface.
                EventKind::Deliver { msg, .. } => self.stats.record_drop(msg.kind()),
                // Timers survive the outage: defer until the node returns.
                EventKind::Timer { token } => {
                    self.seq += 1;
                    self.queue.push(Reverse(Event {
                        at: self.now + DOWN_TIMER_DEFER,
                        seq: self.seq,
                        to: node,
                        kind: EventKind::Timer { token },
                    }));
                }
            }
            return true;
        }
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            sends: Vec::new(),
            timers: Vec::new(),
        };
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.stats.record_delivery(msg.kind());
                self.nodes[node.0].on_message(from, msg, &mut ctx);
            }
            EventKind::Timer { token } => {
                self.nodes[node.0].on_timer(token, &mut ctx);
            }
        }
        let Context { sends, timers, .. } = ctx;
        for (to, msg) in sends {
            self.enqueue_send(node, to, msg);
        }
        for (delay, token) in timers {
            self.seq += 1;
            self.queue.push(Reverse(Event {
                at: self.now + delay,
                seq: self.seq,
                to: node,
                kind: EventKind::Timer { token },
            }));
        }
        true
    }

    /// Runs until simulated time reaches `deadline` or the queue drains.
    ///
    /// On return, `now()` is at least `deadline` even if the queue drained
    /// early, so repeated calls advance a quiet simulation's clock.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.next_event_at() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after 50 million events as a runaway-protocol backstop.
    pub fn run_to_quiescence(&mut self) {
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start < 50_000_000,
                "simulation did not quiesce"
            );
        }
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs a closure against a node's actor, e.g. to inspect its state
    /// from tests and harnesses.
    pub fn with_node<R>(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Actor<M>) -> R) -> R {
        f(self.nodes[id.0].as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
        fn size_bytes(&self) -> usize {
            8
        }
    }

    /// Forwards each message to the next node, decrementing.
    struct Ring {
        next: NodeId,
        seen: Vec<u64>,
    }
    impl Actor<Num> for Ring {
        fn on_message(&mut self, _from: NodeId, msg: Num, ctx: &mut Context<'_, Num>) {
            self.seen.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.next, Num(msg.0 - 1));
            }
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Num>) {
            ctx.send(self.next, Num(token));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn ring_sim(seed: u64) -> (Simulation<Num>, Vec<NodeId>) {
        let mut sim = Simulation::new(SimConfig::lan(seed));
        let ids: Vec<NodeId> = (0..3)
            .map(|i| {
                sim.add_node(Ring {
                    next: NodeId((i + 1) % 3),
                    seen: Vec::new(),
                })
            })
            .collect();
        (sim, ids)
    }

    #[test]
    fn messages_circulate_and_time_advances() {
        let (mut sim, ids) = ring_sim(1);
        sim.post(ids[2], ids[0], Num(5));
        sim.run_to_quiescence();
        assert_eq!(sim.stats().total_messages, 6);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, ids) = ring_sim(seed);
            sim.post(ids[0], ids[1], Num(20));
            sim.run_to_quiescence();
            (
                sim.now(),
                sim.stats().total_messages,
                sim.events_processed(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different latencies");
    }

    #[test]
    fn partition_blocks_delivery() {
        let (mut sim, ids) = ring_sim(2);
        sim.partition_pair(ids[0], ids[1]);
        sim.post(ids[2], ids[0], Num(5)); // n0 will try to send to n1
        sim.run_to_quiescence();
        // The initial delivery reaches n0, whose forward to n1 is dropped.
        assert_eq!(sim.stats().dropped_messages, 1);
        assert_eq!(sim.stats().delivered_messages, 1);
    }

    #[test]
    fn heal_restores_links() {
        let (mut sim, ids) = ring_sim(3);
        sim.partition_pair(ids[0], ids[1]);
        sim.heal_all();
        sim.post(ids[2], ids[0], Num(3));
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_messages, 0);
    }

    #[test]
    fn drops_are_probabilistic_and_seeded() {
        let mut cfg = SimConfig::lan(9);
        cfg.drop_probability = 0.5;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_node(Ring {
            next: NodeId(1),
            seen: Vec::new(),
        });
        let b = sim.add_node(Ring {
            next: NodeId(0),
            seen: Vec::new(),
        });
        sim.post(a, b, Num(200));
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(s.dropped_messages > 0, "some messages should drop");
        assert!(s.delivered_messages > 0, "some messages should survive");
    }

    #[test]
    fn timers_fire() {
        struct TimerNode;
        #[derive(Clone, Debug)]
        struct Unit;
        impl Message for Unit {
            fn kind(&self) -> &'static str {
                "unit"
            }
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl Actor<Unit> for TimerNode {
            fn on_message(&mut self, _f: NodeId, _m: Unit, ctx: &mut Context<'_, Unit>) {
                ctx.set_timer(SimTime::from_millis(30), 3);
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(20), 2);
            }
        }
        let mut sim = Simulation::new(SimConfig::lan(4));
        let n = sim.add_node(TimerNode);
        sim.post_local(n, n, Unit);
        sim.run_to_quiescence();
        // 1 delivery + 3 timer events.
        assert_eq!(sim.events_processed(), 4);
        assert!(sim.now() >= SimTime::from_millis(30));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, ids) = ring_sim(5);
        sim.post(ids[0], ids[1], Num(1_000_000));
        sim.run_until(SimTime::from_millis(1));
        assert!(sim.now() >= SimTime::from_millis(1));
        // The ring has not drained: events remain.
        assert!(sim.step());
    }

    #[test]
    fn run_until_advances_clock_when_quiet() {
        let (mut sim, _) = ring_sim(6);
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.now(), SimTime::from_millis(500));
    }

    #[test]
    fn per_kind_accounting() {
        let (mut sim, ids) = ring_sim(6);
        sim.post(ids[0], ids[1], Num(4));
        sim.run_to_quiescence();
        assert_eq!(sim.stats().sent_by_kind("num"), 5);
        assert_eq!(sim.stats().bytes_by_kind("num"), 40);
        assert_eq!(sim.stats().sent_by_kind("nope"), 0);
    }

    #[test]
    fn scheduled_partition_window_blocks_then_heals() {
        // A partition window [10ms, 10s) over n0↔n1 while a slow ring
        // message is in flight: the forward from n0 to n1 dies inside the
        // window; after HealAll a fresh message circulates cleanly.
        let (mut sim, ids) = ring_sim(11);
        sim.schedule_net_event(
            SimTime::from_millis(10),
            NetEvent::PartitionPair(ids[0], ids[1]),
        );
        sim.schedule_net_event(SimTime::from_secs(10), NetEvent::HealAll);
        // Timer at n2 fires at 100ms: n2 → n0 delivers, n0's forward to n1
        // crosses the partitioned link inside the window.
        sim.schedule_timer(ids[2], SimTime::from_millis(100), 1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.run_until(SimTime::from_secs(11));
        sim.post(ids[2], ids[0], Num(2));
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_messages, 1, "healed links deliver");
        assert!(sim.stats().delivered_messages >= 3);
    }

    #[test]
    fn down_node_drops_deliveries_and_defers_timers() {
        let (mut sim, ids) = ring_sim(12);
        sim.apply_net_event(NetEvent::NodeDown(ids[1]));
        assert!(sim.is_down(ids[1]));
        // Delivery to a down node is dropped (counted after the send).
        sim.post(ids[0], ids[1], Num(3));
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.stats().dropped_messages, 1);
        // A timer set while down survives the outage and fires after NodeUp.
        sim.schedule_timer(ids[1], SimTime::from_millis(10), 7);
        sim.schedule_net_event(SimTime::from_millis(500), NetEvent::NodeUp(ids[1]));
        sim.run_to_quiescence();
        assert!(!sim.is_down(ids[1]));
        // The deferred timer fired after restart: n1 sent Num(7) onward.
        sim.with_node(ids[2], |n| {
            let ring = n
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<Ring>())
                .expect("ring actor");
            assert_eq!(ring.seen.first(), Some(&7), "deferred timer fired");
        });
        assert!(sim.now() >= SimTime::from_millis(500));
    }

    #[test]
    fn scheduled_drop_probability_window() {
        let (mut sim, ids) = ring_sim(13);
        sim.schedule_net_event(SimTime::ZERO, NetEvent::SetDropProbability(1.0));
        sim.schedule_net_event(SimTime::from_secs(1), NetEvent::SetDropProbability(0.0));
        // Lost inside the 100% drop phase.
        sim.schedule_timer(ids[0], SimTime::from_millis(100), 1);
        // Delivered after the phase ends.
        sim.schedule_timer(ids[0], SimTime::from_millis(1500), 0);
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_messages, 1);
        assert!(sim.stats().delivered_messages >= 1);
    }

    #[test]
    fn net_events_are_deterministic_with_actor_events() {
        let run = |seed| {
            let (mut sim, ids) = ring_sim(seed);
            sim.schedule_net_event(
                SimTime::from_millis(1),
                NetEvent::SetLatency(LatencyModel::wan()),
            );
            sim.schedule_net_event(
                SimTime::from_millis(2),
                NetEvent::PartitionPair(ids[0], ids[1]),
            );
            sim.schedule_net_event(SimTime::from_millis(300), NetEvent::HealAll);
            sim.schedule_net_event(SimTime::from_millis(40), NetEvent::NodeDown(ids[2]));
            sim.schedule_net_event(SimTime::from_millis(200), NetEvent::NodeUp(ids[2]));
            sim.post(ids[0], ids[1], Num(30));
            sim.schedule_timer(ids[1], SimTime::from_millis(50), 9);
            sim.run_to_quiescence();
            (sim.now(), sim.stats().clone(), sim.events_processed())
        };
        assert_eq!(run(21), run(21));
    }
}
