//! Simulated time, in microseconds.

use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in microseconds.
///
/// ```
/// use sstore_simnet::SimTime;
///
/// let t = SimTime::from_millis(3) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(format!("{t}"), "3.500ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1500).as_millis(), 1);
        assert!((SimTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(5));
        assert_eq!(b - a, SimTime::from_millis(1));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(5));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_micros(12_345)), "12.345ms");
        assert_eq!(format!("{}", SimTime::ZERO), "0.000ms");
    }
}
