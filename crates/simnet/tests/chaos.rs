//! Simulator stress tests: partitions forming and healing mid-run, lossy
//! links, heavy-tailed latency, and determinism under all of it.

use rand::Rng;
use sstore_simnet::{
    Actor, Context, LatencyModel, Message, NodeId, SimConfig, SimTime, Simulation,
};

#[derive(Clone, Debug)]
struct Token {
    hops_left: u32,
    id: u64,
}

impl Message for Token {
    fn kind(&self) -> &'static str {
        "token"
    }
    fn size_bytes(&self) -> usize {
        12
    }
}

/// Forwards tokens to random peers until their hop budget runs out.
struct RandomWalker {
    n: usize,
    received: u64,
}

impl Actor<Token> for RandomWalker {
    fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<'_, Token>) {
        self.received += 1;
        if msg.hops_left > 0 {
            let me = ctx.node().0;
            let mut next = ctx.rng().gen_range(0..self.n);
            if next == me {
                next = (next + 1) % self.n;
            }
            ctx.send(
                NodeId(next),
                Token {
                    hops_left: msg.hops_left - 1,
                    id: msg.id,
                },
            );
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

fn walker_sim(n: usize, config: SimConfig) -> Simulation<Token> {
    let mut sim = Simulation::new(config);
    for _ in 0..n {
        sim.add_node(RandomWalker { n, received: 0 });
    }
    sim
}

#[test]
fn random_walk_is_deterministic() {
    let run = |seed| {
        let mut sim = walker_sim(8, SimConfig::lan(seed));
        for id in 0..10 {
            sim.post(
                NodeId(0),
                NodeId((id as usize) % 8),
                Token { hops_left: 50, id },
            );
        }
        sim.run_to_quiescence();
        (sim.now(), sim.stats().total_messages)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn partitions_mid_run_change_flow_and_heal() {
    let mut sim = walker_sim(6, SimConfig::lan(9));
    sim.post(
        NodeId(5),
        NodeId(0),
        Token {
            hops_left: 500,
            id: 1,
        },
    );
    // Let it run a little, then island node 0 completely.
    sim.run_until(SimTime::from_millis(2));
    for peer in 1..6 {
        sim.partition_pair(NodeId(0), NodeId(peer));
    }
    sim.run_until(SimTime::from_millis(50));
    let dropped_mid = sim.stats().dropped_messages;
    sim.heal_all();
    sim.run_to_quiescence();
    let total_dropped = sim.stats().dropped_messages;
    // The walk either died at node 0's island (drops observed) or avoided
    // node 0 entirely; either way healing must not add new drops.
    assert_eq!(total_dropped, dropped_mid, "no drops after heal");
}

#[test]
fn lossy_network_drops_proportionally() {
    let mut lossy = SimConfig::lan(11);
    lossy.drop_probability = 0.25;
    let mut sim = walker_sim(4, lossy);
    for id in 0..200 {
        sim.post(NodeId(0), NodeId(1), Token { hops_left: 3, id });
    }
    sim.run_to_quiescence();
    let s = sim.stats();
    let rate = s.dropped_messages as f64 / s.total_messages as f64;
    assert!(
        (0.15..0.35).contains(&rate),
        "drop rate {rate} far from 0.25"
    );
}

#[test]
fn heavy_tail_latency_spreads_completion() {
    let run = |latency: LatencyModel| {
        let mut cfg = SimConfig::lan(13);
        cfg.latency = latency;
        let mut sim = walker_sim(4, cfg);
        for id in 0..50 {
            sim.post(NodeId(0), NodeId(1), Token { hops_left: 20, id });
        }
        sim.run_to_quiescence();
        sim.now()
    };
    let uniform = run(LatencyModel::wan());
    let heavy = run(LatencyModel::wan_heavy_tail());
    assert!(
        heavy > uniform,
        "heavy tail ({heavy}) should stretch the makespan past uniform ({uniform})"
    );
}

#[test]
fn stats_reset_and_since() {
    let mut sim = walker_sim(3, SimConfig::lan(17));
    sim.post(
        NodeId(0),
        NodeId(1),
        Token {
            hops_left: 10,
            id: 1,
        },
    );
    sim.run_to_quiescence();
    let first = sim.stats().clone();
    assert!(first.total_messages > 0);
    sim.reset_stats();
    assert_eq!(sim.stats().total_messages, 0);
    sim.post(
        NodeId(0),
        NodeId(1),
        Token {
            hops_left: 5,
            id: 2,
        },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.stats().total_messages, 6);
}

#[test]
fn node_state_inspectable_via_downcast() {
    let mut sim = walker_sim(3, SimConfig::lan(19));
    sim.post(
        NodeId(2),
        NodeId(0),
        Token {
            hops_left: 7,
            id: 1,
        },
    );
    sim.run_to_quiescence();
    let total: u64 = (0..3)
        .map(|i| {
            sim.with_node(NodeId(i), |a| {
                a.as_any_mut()
                    .and_then(|x| x.downcast_mut::<RandomWalker>())
                    .map(|w| w.received)
                    .unwrap()
            })
        })
        .sum();
    assert_eq!(total, 8, "7 hops + initial delivery");
}

#[test]
fn messages_to_unknown_nodes_are_ignored() {
    let mut sim = walker_sim(2, SimConfig::lan(23));
    sim.post(
        NodeId(0),
        NodeId(99),
        Token {
            hops_left: 0,
            id: 1,
        },
    );
    sim.run_to_quiescence(); // must not panic
    assert_eq!(sim.stats().total_messages, 1);
    assert_eq!(
        sim.stats().delivered_messages,
        0,
        "nothing is delivered to a nonexistent node"
    );
}
