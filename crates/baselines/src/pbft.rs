//! PBFT-lite: the normal-case three-phase protocol of Castro–Liskov.
//!
//! `n = 3f+1` replicas; replica 0 is the (fixed) primary. A client request
//! flows REQUEST → PRE-PREPARE → PREPARE → COMMIT → REPLY, with HMAC
//! authenticators on every message — the cheap-MACs/many-messages point in
//! the paper's §6 comparison: roughly `2n² + 2n + 1` messages per
//! operation versus the secure store's `b+1`.
//!
//! View changes, checkpoints and batching are out of scope: the comparison
//! is about common-case complexity, and a crashed primary surfaces as
//! unavailability.

use std::collections::{HashMap, HashSet};

use sstore_core::metrics::CryptoCounters;
use sstore_core::types::{DataId, OpId};
use sstore_crypto::ct::ct_eq;
use sstore_crypto::hmac::hmac_sha256;
use sstore_crypto::sha256::{digest_parts, Digest};
use sstore_simnet::{Actor, Context, Message, NodeId, SimConfig, SimTime, Simulation};

use crate::BaselineResult;

/// A state-machine command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Store `value` under `data`.
    Put {
        /// Target item.
        data: DataId,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Fetch the value under `data`.
    Get {
        /// Target item.
        data: DataId,
    },
}

impl Command {
    fn digest(&self, op: OpId) -> Digest {
        match self {
            Command::Put { data, value } => digest_parts([
                b"put".as_slice(),
                &op.0.to_be_bytes(),
                &data.0.to_be_bytes(),
                value,
            ]),
            Command::Get { data } => digest_parts([
                b"get".as_slice(),
                &op.0.to_be_bytes(),
                &data.0.to_be_bytes(),
            ]),
        }
    }
}

/// PBFT-lite wire messages. Every message carries an HMAC authenticator
/// computed over its digest with a pairwise key.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Client request to the primary.
    Request {
        /// Client-chosen operation id.
        op: OpId,
        /// The command.
        cmd: Command,
        /// Authenticator.
        mac: Digest,
    },
    /// Primary assigns a sequence number.
    PrePrepare {
        /// Sequence number.
        seq: u64,
        /// Operation id (reply routing).
        op: OpId,
        /// The command.
        cmd: Command,
        /// Command digest.
        digest: Digest,
        /// Authenticator.
        mac: Digest,
    },
    /// Replica agrees with the assignment.
    Prepare {
        /// Sequence number.
        seq: u64,
        /// Command digest.
        digest: Digest,
        /// Sender replica index.
        replica: u16,
        /// Authenticator.
        mac: Digest,
    },
    /// Replica commits.
    Commit {
        /// Sequence number.
        seq: u64,
        /// Command digest.
        digest: Digest,
        /// Sender replica index.
        replica: u16,
        /// Authenticator.
        mac: Digest,
    },
    /// Execution result back to the client.
    Reply {
        /// Echoed operation id.
        op: OpId,
        /// Result bytes (empty for Put).
        result: Option<Vec<u8>>,
        /// Sender replica index.
        replica: u16,
        /// Authenticator.
        mac: Digest,
    },
}

impl Message for PbftMsg {
    fn kind(&self) -> &'static str {
        match self {
            PbftMsg::Request { .. } => "pbft-request",
            PbftMsg::PrePrepare { .. } => "pbft-pre-prepare",
            PbftMsg::Prepare { .. } => "pbft-prepare",
            PbftMsg::Commit { .. } => "pbft-commit",
            PbftMsg::Reply { .. } => "pbft-reply",
        }
    }

    fn size_bytes(&self) -> usize {
        let payload = match self {
            PbftMsg::Request { cmd, .. } | PbftMsg::PrePrepare { cmd, .. } => match cmd {
                Command::Put { value, .. } => 16 + value.len(),
                Command::Get { .. } => 16,
            },
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => 16,
            PbftMsg::Reply { result, .. } => 8 + result.as_ref().map_or(0, Vec::len),
        };
        payload + 32 /* digest */ + 32 /* mac */ + 16
    }
}

/// Derives the pairwise MAC key for nodes `(a, b)` (order-independent).
fn pair_key(a: usize, b: usize) -> [u8; 8] {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut k = [0u8; 8];
    k[..4].copy_from_slice(&(lo as u32).to_be_bytes());
    k[4..].copy_from_slice(&(hi as u32).to_be_bytes());
    k
}

fn mac_for(from: usize, to: usize, digest: &Digest, counters: &mut CryptoCounters) -> Digest {
    counters.count_mac();
    hmac_sha256(&pair_key(from, to), digest.as_bytes())
}

fn check_mac(
    from: usize,
    to: usize,
    digest: &Digest,
    mac: &Digest,
    counters: &mut CryptoCounters,
) -> bool {
    counters.count_mac();
    ct_eq(
        hmac_sha256(&pair_key(from, to), digest.as_bytes()).as_bytes(),
        mac.as_bytes(),
    )
}

#[derive(Debug, Default)]
struct SlotState {
    digest: Option<Digest>,
    op: Option<OpId>,
    cmd: Option<Command>,
    /// Replicas whose prepare-phase vote we hold (the primary's
    /// pre-prepare counts as its vote, and a replica's own vote counts
    /// once broadcast).
    prepares: HashSet<u16>,
    commits: HashSet<u16>,
    commit_sent: bool,
    executed: bool,
}

/// A PBFT-lite replica.
pub struct PbftReplica {
    index: usize,
    n: usize,
    f: usize,
    client_node: NodeId,
    store: HashMap<DataId, Vec<u8>>,
    slots: HashMap<u64, SlotState>,
    next_seq: u64,
    exec_cursor: u64,
    counters: CryptoCounters,
    crashed: bool,
}

impl PbftReplica {
    /// Creates replica `index` of `n = 3f+1`.
    pub fn new(index: usize, n: usize, f: usize, client_node: NodeId) -> Self {
        PbftReplica {
            index,
            n,
            f,
            client_node,
            store: HashMap::new(),
            slots: HashMap::new(),
            next_seq: 1,
            exec_cursor: 1,
            counters: CryptoCounters::new(),
            crashed: false,
        }
    }

    /// Marks the replica crashed.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Crypto counters.
    pub fn counters(&self) -> CryptoCounters {
        self.counters
    }

    fn is_primary(&self) -> bool {
        self.index == 0
    }

    fn broadcast(
        &mut self,
        ctx: &mut Context<'_, PbftMsg>,
        make: impl Fn(&mut CryptoCounters, usize) -> PbftMsg,
    ) {
        for peer in 0..self.n {
            if peer == self.index {
                continue;
            }
            let msg = make(&mut self.counters, peer);
            ctx.send(NodeId(peer), msg);
        }
    }

    /// Broadcasts our commit once the prepare quorum (2f+1 votes,
    /// pre-prepare included) is reached.
    fn maybe_commit(&mut self, seq: u64, ctx: &mut Context<'_, PbftMsg>) {
        let quorum = 2 * self.f + 1;
        let own = self.index as u16;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        let Some(digest) = slot.digest else {
            return;
        };
        if slot.commit_sent || slot.prepares.len() < quorum {
            return;
        }
        slot.commit_sent = true;
        slot.commits.insert(own);
        let index = self.index;
        self.broadcast(ctx, |counters, peer| {
            let mac = mac_for(index, peer, &digest, counters);
            PbftMsg::Commit {
                seq,
                digest,
                replica: own,
                mac,
            }
        });
    }

    fn try_execute(&mut self, ctx: &mut Context<'_, PbftMsg>) {
        // Execute committed slots in order.
        while let Some(slot) = self.slots.get(&self.exec_cursor) {
            let quorum = 2 * self.f + 1;
            // Committed-local: 2f+1 commit votes and prepared.
            if slot.executed
                || slot.commits.len() < quorum
                || slot.prepares.len() < quorum
                || slot.cmd.is_none()
            {
                break;
            }
            let seq = self.exec_cursor;
            let (op, cmd) = {
                let slot = self.slots.get_mut(&seq).expect("slot exists");
                slot.executed = true;
                (slot.op.expect("op set"), slot.cmd.clone().expect("cmd set"))
            };
            let result = match cmd {
                Command::Put { data, value } => {
                    self.store.insert(data, value);
                    None
                }
                Command::Get { data } => Some(self.store.get(&data).cloned().unwrap_or_default()),
            };
            let reply_digest = digest_parts([
                b"reply".as_slice(),
                &op.0.to_be_bytes(),
                result.as_deref().unwrap_or(&[]),
            ]);
            let mac = mac_for(
                self.index,
                self.client_node.0,
                &reply_digest,
                &mut self.counters,
            );
            ctx.send(
                self.client_node,
                PbftMsg::Reply {
                    op,
                    result,
                    replica: self.index as u16,
                    mac,
                },
            );
            self.exec_cursor += 1;
        }
    }
}

impl Actor<PbftMsg> for PbftReplica {
    fn on_message(&mut self, from: NodeId, msg: PbftMsg, ctx: &mut Context<'_, PbftMsg>) {
        if self.crashed {
            return;
        }
        match msg {
            PbftMsg::Request { op, cmd, mac } => {
                if !self.is_primary() {
                    return; // fixed-primary variant
                }
                let d = cmd.digest(op);
                if !check_mac(from.0, self.index, &d, &mac, &mut self.counters) {
                    return;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                let index = self.index as u16;
                let slot = self.slots.entry(seq).or_default();
                slot.digest = Some(d);
                slot.op = Some(op);
                slot.cmd = Some(cmd.clone());
                slot.prepares.insert(index); // the pre-prepare is our vote
                let index = self.index;
                self.broadcast(ctx, |counters, peer| {
                    let mac = mac_for(index, peer, &d, counters);
                    PbftMsg::PrePrepare {
                        seq,
                        op,
                        cmd: cmd.clone(),
                        digest: d,
                        mac,
                    }
                });
                self.maybe_commit(seq, ctx);
                self.try_execute(ctx);
            }
            PbftMsg::PrePrepare {
                seq,
                op,
                cmd,
                digest,
                mac,
            } => {
                if self.is_primary() || from != NodeId(0) {
                    return;
                }
                if !check_mac(from.0, self.index, &digest, &mac, &mut self.counters) {
                    return;
                }
                if !ct_eq(cmd.digest(op).as_bytes(), digest.as_bytes()) {
                    return; // primary equivocation
                }
                let own = self.index as u16;
                let slot = self.slots.entry(seq).or_default();
                if slot.digest.is_some() {
                    return; // duplicate pre-prepare
                }
                slot.digest = Some(digest);
                slot.op = Some(op);
                slot.cmd = Some(cmd);
                slot.prepares.insert(0); // the primary's vote
                slot.prepares.insert(own); // our vote, broadcast below
                let index = self.index;
                self.broadcast(ctx, |counters, peer| {
                    let mac = mac_for(index, peer, &digest, counters);
                    PbftMsg::Prepare {
                        seq,
                        digest,
                        replica: index as u16,
                        mac,
                    }
                });
                self.maybe_commit(seq, ctx);
                self.try_execute(ctx);
            }
            PbftMsg::Prepare {
                seq,
                digest,
                replica,
                mac,
            } => {
                if !check_mac(from.0, self.index, &digest, &mac, &mut self.counters) {
                    return;
                }
                let slot = self.slots.entry(seq).or_default();
                if slot
                    .digest
                    .is_some_and(|d| !ct_eq(d.as_bytes(), digest.as_bytes()))
                {
                    return;
                }
                slot.prepares.insert(replica);
                self.maybe_commit(seq, ctx);
                self.try_execute(ctx);
            }
            PbftMsg::Commit {
                seq,
                digest,
                replica,
                mac,
            } => {
                if !check_mac(from.0, self.index, &digest, &mac, &mut self.counters) {
                    return;
                }
                let slot = self.slots.entry(seq).or_default();
                if slot
                    .digest
                    .is_some_and(|d| !ct_eq(d.as_bytes(), digest.as_bytes()))
                {
                    return;
                }
                slot.commits.insert(replica);
                self.try_execute(ctx);
            }
            PbftMsg::Reply { .. } => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The PBFT-lite client.
pub struct PbftClient {
    node: NodeId,
    f: usize,
    counters: CryptoCounters,
    inflight: Option<OpId>,
    replies: HashMap<u16, Option<Vec<u8>>>,
    result: Option<BaselineResult>,
    next_op: u64,
}

impl PbftClient {
    fn new(node: NodeId, f: usize) -> Self {
        PbftClient {
            node,
            f,
            counters: CryptoCounters::new(),
            inflight: None,
            replies: HashMap::new(),
            result: None,
            next_op: 1,
        }
    }
}

impl Actor<PbftMsg> for PbftClient {
    fn on_message(&mut self, from: NodeId, msg: PbftMsg, _ctx: &mut Context<'_, PbftMsg>) {
        let PbftMsg::Reply {
            op,
            result,
            replica,
            mac,
        } = msg
        else {
            return;
        };
        if self.inflight != Some(op) {
            return;
        }
        let reply_digest = digest_parts([
            b"reply".as_slice(),
            &op.0.to_be_bytes(),
            result.as_deref().unwrap_or(&[]),
        ]);
        if !check_mac(from.0, self.node.0, &reply_digest, &mac, &mut self.counters) {
            return;
        }
        self.replies.insert(replica, result);
        // f+1 matching replies suffice.
        let mut tally: Vec<(&Option<Vec<u8>>, usize)> = Vec::new();
        for r in self.replies.values() {
            match tally.iter_mut().find(|(v, _)| *v == r) {
                Some((_, c)) => *c += 1,
                None => tally.push((r, 1)),
            }
        }
        if let Some((value, _)) = tally.into_iter().find(|(_, c)| *c > self.f) {
            self.result = Some(BaselineResult {
                ok: true,
                value: value.clone(),
                latency: SimTime::ZERO,
            });
            self.inflight = None;
            self.replies.clear();
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A simulated PBFT-lite cluster with a synchronous-style driver.
pub struct PbftCluster {
    /// The underlying simulation.
    pub sim: Simulation<PbftMsg>,
    n: usize,
    client_node: NodeId,
}

impl PbftCluster {
    /// Builds `n = 3f+1` replicas plus one client.
    ///
    /// # Panics
    ///
    /// Panics unless `n == 3f+1`.
    pub fn new(f: usize, config: SimConfig) -> Self {
        let n = 3 * f + 1;
        let mut sim = Simulation::new(config);
        let client_node = NodeId(n);
        for i in 0..n {
            sim.add_node(PbftReplica::new(i, n, f, client_node));
        }
        let real_client = sim.add_node(PbftClient::new(client_node, f));
        assert_eq!(real_client, client_node);
        PbftCluster {
            sim,
            n,
            client_node,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Crashes replica `i` (crashing 0 kills the fixed primary).
    pub fn crash_replica(&mut self, i: usize) {
        self.sim.with_node(NodeId(i), |a| {
            a.as_any_mut()
                .and_then(|x| x.downcast_mut::<PbftReplica>())
                .expect("replica")
                .crash();
        });
    }

    fn with_client<R>(&mut self, g: impl FnOnce(&mut PbftClient) -> R) -> R {
        self.sim.with_node(self.client_node, |a| {
            g(a.as_any_mut()
                .and_then(|x| x.downcast_mut::<PbftClient>())
                .expect("client"))
        })
    }

    /// Executes one command through consensus; runs until a reply quorum or
    /// the timeout.
    pub fn execute(&mut self, cmd: Command) -> BaselineResult {
        let started = self.sim.now();
        let client_node = self.client_node;
        let (op, msg) = self.with_client(|c| {
            let op = OpId(c.next_op);
            c.next_op += 1;
            c.inflight = Some(op);
            c.result = None;
            c.replies.clear();
            let d = cmd.digest(op);
            let mac = mac_for(client_node.0, 0, &d, &mut c.counters);
            (op, PbftMsg::Request { op, cmd, mac })
        });
        let _ = op;
        self.sim.post(client_node, NodeId(0), msg);
        let deadline = started + SimTime::from_secs(5);
        loop {
            if let Some(mut r) = self.with_client(|c| c.result.take()) {
                r.latency = self.sim.now().saturating_sub(started);
                return r;
            }
            if self.sim.now() >= deadline {
                self.with_client(|c| c.inflight = None);
                return BaselineResult {
                    ok: false,
                    value: None,
                    latency: self.sim.now().saturating_sub(started),
                };
            }
            if !self.sim.step() {
                // No more events: the op cannot complete (crashed quorum).
                self.sim.run_until(deadline);
            }
        }
    }

    /// Put convenience wrapper.
    pub fn put(&mut self, data: DataId, value: &[u8]) -> BaselineResult {
        self.execute(Command::Put {
            data,
            value: value.to_vec(),
        })
    }

    /// Get convenience wrapper.
    pub fn get(&mut self, data: DataId) -> BaselineResult {
        self.execute(Command::Get { data })
    }

    /// Sum of replica crypto counters.
    pub fn replica_counters(&mut self) -> CryptoCounters {
        let mut total = CryptoCounters::new();
        for i in 0..self.n {
            total = total.merged(self.sim.with_node(NodeId(i), |a| {
                a.as_any_mut()
                    .and_then(|x| x.downcast_mut::<PbftReplica>())
                    .expect("replica")
                    .counters()
            }));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(f: usize, seed: u64) -> PbftCluster {
        PbftCluster::new(f, SimConfig::lan(seed))
    }

    #[test]
    fn put_then_get() {
        let mut c = cluster(1, 1);
        assert!(c.put(DataId(1), b"linearizable").ok);
        let r = c.get(DataId(1));
        assert!(r.ok);
        assert_eq!(r.value.unwrap(), b"linearizable");
    }

    #[test]
    fn get_of_missing_returns_empty() {
        let mut c = cluster(1, 2);
        let r = c.get(DataId(7));
        assert!(r.ok);
        assert_eq!(r.value.unwrap(), b"");
    }

    #[test]
    fn sequential_ops_ordered() {
        let mut c = cluster(1, 3);
        c.put(DataId(1), b"a");
        c.put(DataId(1), b"b");
        c.put(DataId(2), b"c");
        assert_eq!(c.get(DataId(1)).value.unwrap(), b"b");
        assert_eq!(c.get(DataId(2)).value.unwrap(), b"c");
    }

    #[test]
    fn message_complexity_is_quadratic() {
        let mut c = cluster(1, 4);
        let n = c.n() as u64;
        c.put(DataId(1), b"v");
        let s = c.sim.stats();
        // 1 request + (n-1) pre-prepares + (n-1)^2 prepares + n(n-1)
        // commits + n replies.
        assert_eq!(s.sent_by_kind("pbft-request"), 1);
        assert_eq!(s.sent_by_kind("pbft-pre-prepare"), n - 1);
        assert_eq!(s.sent_by_kind("pbft-prepare"), (n - 1) * (n - 1));
        assert_eq!(s.sent_by_kind("pbft-commit"), n * (n - 1));
        assert_eq!(s.sent_by_kind("pbft-reply"), n);
        let total = s.total_messages;
        assert!(total >= 2 * n * n - 2 * n, "O(n^2): got {total}");
    }

    #[test]
    fn tolerates_f_backup_crashes() {
        let mut c = cluster(1, 5);
        c.crash_replica(3);
        assert!(c.put(DataId(1), b"v").ok);
        assert_eq!(c.get(DataId(1)).value.unwrap(), b"v");
    }

    #[test]
    fn primary_crash_means_unavailable() {
        let mut c = cluster(1, 6);
        c.crash_replica(0);
        let r = c.put(DataId(1), b"v");
        assert!(!r.ok, "fixed-primary variant cannot make progress");
    }

    #[test]
    fn macs_are_counted() {
        let mut c = cluster(1, 7);
        c.put(DataId(1), b"v");
        assert!(c.replica_counters().macs > 0);
        // No signatures anywhere in PBFT-lite.
        assert_eq!(c.replica_counters().signs, 0);
    }

    #[test]
    fn f2_configuration_works() {
        let mut c = cluster(2, 8);
        assert_eq!(c.n(), 7);
        assert!(c.put(DataId(1), b"seven replicas").ok);
        assert_eq!(c.get(DataId(1)).value.unwrap(), b"seven replicas");
    }
}
