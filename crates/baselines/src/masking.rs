//! Byzantine masking-quorum register (Malkhi–Reiter, as used by Phalanx).
//!
//! Quorums of `q = ⌈(n+2b+1)/2⌉`: any two intersect in `2b+1` servers, of
//! which at least `b+1` are correct — so a reader always sees `b+1`
//! identical copies of the last written value and can mask `b` liars.
//! Requires `n ≥ 4b+1` for quorum availability.
//!
//! Costs (paper §6): reads and writes each contact `q` servers; the client
//! verifies a signature per distinct response. Contrast with the secure
//! store's `b+1` data quorums.

use std::collections::{HashMap, HashSet};

use sstore_core::item::StoredItem;
use sstore_core::metrics::CryptoCounters;
use sstore_core::quorum;
use sstore_core::types::{ClientId, DataId, GroupId, OpId, ServerId, Timestamp};
use sstore_core::Directory;
use sstore_crypto::schnorr::SigningKey;
use sstore_simnet::{Actor, Context, Message, NodeId, SimConfig, SimTime, Simulation};

use crate::BaselineResult;

/// Masking-quorum wire messages.
#[derive(Debug, Clone)]
pub enum MaskMsg {
    /// Write a signed item.
    Write {
        /// Operation id.
        op: OpId,
        /// The signed item.
        item: StoredItem,
    },
    /// Acknowledge a write.
    WriteAck {
        /// Echoed operation id.
        op: OpId,
    },
    /// Read the server's current copy.
    Read {
        /// Operation id.
        op: OpId,
        /// Item to read.
        data: DataId,
    },
    /// Full-copy response.
    ReadResp {
        /// Echoed operation id.
        op: OpId,
        /// The server's copy, if any.
        item: Option<StoredItem>,
    },
}

impl Message for MaskMsg {
    fn kind(&self) -> &'static str {
        match self {
            MaskMsg::Write { .. } => "mask-write",
            MaskMsg::WriteAck { .. } => "mask-write-ack",
            MaskMsg::Read { .. } => "mask-read",
            MaskMsg::ReadResp { .. } => "mask-read-resp",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            MaskMsg::Write { item, .. } => 16 + item.size_bytes(),
            MaskMsg::WriteAck { .. } => 16,
            MaskMsg::Read { .. } => 24,
            MaskMsg::ReadResp { item, .. } => 17 + item.as_ref().map_or(0, |i| i.size_bytes()),
        }
    }
}

/// A masking-quorum server: verifies and stores the newest signed item.
pub struct MaskServer {
    dir: std::sync::Arc<Directory>,
    items: HashMap<DataId, StoredItem>,
    counters: CryptoCounters,
    crashed: bool,
}

impl MaskServer {
    /// Creates a server.
    pub fn new(dir: std::sync::Arc<Directory>) -> Self {
        MaskServer {
            dir,
            items: HashMap::new(),
            counters: CryptoCounters::new(),
            crashed: false,
        }
    }

    /// Marks the server crashed (fault injection).
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Crypto counters.
    pub fn counters(&self) -> CryptoCounters {
        self.counters
    }
}

impl Actor<MaskMsg> for MaskServer {
    fn on_message(&mut self, from: NodeId, msg: MaskMsg, ctx: &mut Context<'_, MaskMsg>) {
        if self.crashed {
            return;
        }
        match msg {
            MaskMsg::Write { op, item } => {
                let Some(key) = self.dir.client_key(item.meta.writer).cloned() else {
                    return;
                };
                if item.verify(&key, &mut self.counters).is_err() {
                    return;
                }
                let cur = self
                    .items
                    .get(&item.meta.data)
                    .map(|i| i.meta.ts)
                    .unwrap_or(Timestamp::GENESIS);
                if item.meta.ts.is_newer_than(&cur) {
                    self.items.insert(item.meta.data, item);
                }
                ctx.send(from, MaskMsg::WriteAck { op });
            }
            MaskMsg::Read { op, data } => {
                ctx.send(
                    from,
                    MaskMsg::ReadResp {
                        op,
                        item: self.items.get(&data).cloned(),
                    },
                );
            }
            MaskMsg::WriteAck { .. } | MaskMsg::ReadResp { .. } => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

enum MaskOp {
    Write {
        acks: HashSet<ServerId>,
    },
    Read {
        responses: HashMap<ServerId, Option<StoredItem>>,
    },
}

/// The masking-quorum client, driven synchronously by the harness.
pub struct MaskClient {
    id: ClientId,
    dir: std::sync::Arc<Directory>,
    key: SigningKey,
    version: HashMap<DataId, u64>,
    counters: CryptoCounters,
    inflight: Option<(OpId, MaskOp)>,
    result: Option<BaselineResult>,
    next_op: u64,
}

impl MaskClient {
    /// Creates a client.
    pub fn new(id: ClientId, dir: std::sync::Arc<Directory>, key: SigningKey) -> Self {
        MaskClient {
            id,
            dir,
            key,
            version: HashMap::new(),
            counters: CryptoCounters::new(),
            inflight: None,
            result: None,
            next_op: 1,
        }
    }

    fn quorum(&self) -> usize {
        quorum::masking_quorum(self.dir.n(), self.dir.b())
    }
}

impl Actor<MaskMsg> for MaskClient {
    fn on_message(&mut self, from: NodeId, msg: MaskMsg, _ctx: &mut Context<'_, MaskMsg>) {
        let sid = ServerId(from.0 as u16);
        let quorum = self.quorum();
        let accept = quorum::multi_writer_accept(self.dir.b()); // b+1
        let Some((op_id, op)) = &mut self.inflight else {
            return;
        };
        match (op, msg) {
            (MaskOp::Write { acks }, MaskMsg::WriteAck { op }) if op == *op_id => {
                acks.insert(sid);
                if acks.len() >= quorum {
                    self.result = Some(BaselineResult {
                        ok: true,
                        value: None,
                        latency: SimTime::ZERO, // patched by harness
                    });
                    self.inflight = None;
                }
            }
            (MaskOp::Read { responses }, MaskMsg::ReadResp { op, item }) if op == *op_id => {
                // Verify every distinct signed response — the per-response
                // verification cost §6 attributes to strong-consistency
                // quorums.
                let item = item.and_then(|i| {
                    let key = self.dir.client_key(i.meta.writer)?.clone();
                    i.verify(&key, &mut self.counters).is_ok().then_some(i)
                });
                responses.insert(sid, item);
                if responses.len() >= quorum {
                    // Accept the max timestamp vouched for by >= b+1 servers.
                    let mut tally: Vec<(&StoredItem, usize)> = Vec::new();
                    for it in responses.values().flatten() {
                        match tally.iter_mut().find(|(t, _)| {
                            t.meta.ts.compare(&it.meta.ts) == sstore_core::types::TsOrder::Equal
                        }) {
                            Some((_, c)) => *c += 1,
                            None => tally.push((it, 1)),
                        }
                    }
                    let best =
                        tally
                            .into_iter()
                            .filter(|(_, c)| *c >= accept)
                            .max_by(|a, b| match a.0.meta.ts.compare(&b.0.meta.ts) {
                                sstore_core::types::TsOrder::Greater => std::cmp::Ordering::Greater,
                                sstore_core::types::TsOrder::Less => std::cmp::Ordering::Less,
                                _ => std::cmp::Ordering::Equal,
                            });
                    self.result = Some(BaselineResult {
                        ok: true,
                        value: best.map(|(i, _)| i.value.clone()),
                        latency: SimTime::ZERO,
                    });
                    self.inflight = None;
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A simulated masking-quorum cluster with a synchronous-style driver.
pub struct MaskCluster {
    /// The underlying simulation.
    pub sim: Simulation<MaskMsg>,
    dir: std::sync::Arc<Directory>,
    client_node: NodeId,
    n: usize,
}

impl MaskCluster {
    /// Builds a cluster of `n` servers tolerating `b` faults plus one
    /// client.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4b+1` (masking quorums would be unavailable).
    pub fn new(n: usize, b: usize, config: SimConfig) -> Self {
        assert!(
            n >= quorum::min_servers_masking(b),
            "masking quorums need n >= 4b+1"
        );
        let (signing, verifying) = sstore_core::directory::generate_client_keys(1, config.seed);
        let dir = Directory::new(n, b, verifying);
        let mut sim = Simulation::new(config);
        for _ in 0..n {
            sim.add_node(MaskServer::new(dir.clone()));
        }
        let client = MaskClient::new(ClientId(0), dir.clone(), signing[&ClientId(0)].clone());
        let client_node = sim.add_node(client);
        MaskCluster {
            sim,
            dir,
            client_node,
            n,
        }
    }

    /// Crashes server `i`.
    pub fn crash_server(&mut self, i: usize) {
        self.sim.with_node(NodeId(i), |a| {
            a.as_any_mut()
                .and_then(|x| x.downcast_mut::<MaskServer>())
                .expect("server")
                .crash();
        });
    }

    fn with_client<R>(&mut self, f: impl FnOnce(&mut MaskClient) -> R) -> R {
        self.sim.with_node(self.client_node, |a| {
            f(a.as_any_mut()
                .and_then(|x| x.downcast_mut::<MaskClient>())
                .expect("client"))
        })
    }

    fn run_op(&mut self, mut sends: Vec<MaskMsg>, timeout: SimTime) -> BaselineResult {
        let started = self.sim.now();
        let client_node = self.client_node;
        // The client contacts one quorum of servers first (§6's counting);
        // if members are unresponsive it widens to the remaining servers.
        let quorum = quorum::masking_quorum(self.dir.n(), self.dir.b());
        let rest = sends.split_off(quorum.min(sends.len()));
        for (i, msg) in sends.into_iter().enumerate() {
            self.sim.post(client_node, NodeId(i), msg);
        }
        let deadline = started + timeout;
        let widen_at = started + SimTime::from_millis(400);
        let mut widened = false;
        loop {
            if let Some(mut r) = self.with_client(|c| c.result.take()) {
                r.latency = self.sim.now().saturating_sub(started);
                return r;
            }
            if self.sim.now() >= deadline {
                self.with_client(|c| c.inflight = None);
                return BaselineResult {
                    ok: false,
                    value: None,
                    latency: self.sim.now().saturating_sub(started),
                };
            }
            if !widened && self.sim.now() >= widen_at {
                widened = true;
                for (i, msg) in rest.iter().enumerate() {
                    self.sim.post(client_node, NodeId(quorum + i), msg.clone());
                }
            }
            if !self.sim.step() {
                // Queue drained without a result: advance to the next
                // decision point (widen or deadline).
                let next = if widened { deadline } else { widen_at };
                self.sim.run_until(next);
            }
        }
    }

    /// Performs one write and runs the simulation until it completes.
    pub fn write(&mut self, data: DataId, value: &[u8]) -> BaselineResult {
        let n = self.n;
        let (op_id, item) = self.with_client(|c| {
            let op_id = OpId(c.next_op);
            c.next_op += 1;
            let v = c.version.entry(data).or_insert(0);
            *v += 1;
            let ts = Timestamp::Version(*v);
            let item = StoredItem::create(
                data,
                GroupId(0),
                ts,
                c.id,
                None,
                value.to_vec(),
                &c.key,
                &mut c.counters,
            );
            c.inflight = Some((
                op_id,
                MaskOp::Write {
                    acks: HashSet::new(),
                },
            ));
            c.result = None;
            (op_id, item)
        });
        let sends = (0..n)
            .map(|_| MaskMsg::Write {
                op: op_id,
                item: item.clone(),
            })
            .collect();
        self.run_op(sends, SimTime::from_secs(5))
    }

    /// Performs one read and runs the simulation until it completes.
    pub fn read(&mut self, data: DataId) -> BaselineResult {
        let n = self.n;
        let op_id = self.with_client(|c| {
            let op_id = OpId(c.next_op);
            c.next_op += 1;
            c.inflight = Some((
                op_id,
                MaskOp::Read {
                    responses: HashMap::new(),
                },
            ));
            c.result = None;
            op_id
        });
        let sends = (0..n).map(|_| MaskMsg::Read { op: op_id, data }).collect();
        self.run_op(sends, SimTime::from_secs(5))
    }

    /// Client-side crypto counters.
    pub fn client_counters(&mut self) -> CryptoCounters {
        self.with_client(|c| c.counters)
    }

    /// Sum of server crypto counters.
    pub fn server_counters(&mut self) -> CryptoCounters {
        let mut total = CryptoCounters::new();
        for i in 0..self.n {
            total = total.merged(self.sim.with_node(NodeId(i), |a| {
                a.as_any_mut()
                    .and_then(|x| x.downcast_mut::<MaskServer>())
                    .expect("server")
                    .counters()
            }));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, b: usize, seed: u64) -> MaskCluster {
        MaskCluster::new(n, b, SimConfig::lan(seed))
    }

    #[test]
    fn write_then_read() {
        let mut c = cluster(5, 1, 1);
        assert!(c.write(DataId(1), b"value").ok);
        let r = c.read(DataId(1));
        assert!(r.ok);
        assert_eq!(r.value.unwrap(), b"value");
    }

    #[test]
    fn read_of_unwritten_is_empty() {
        let mut c = cluster(5, 1, 2);
        let r = c.read(DataId(9));
        assert!(r.ok);
        assert_eq!(r.value, None);
    }

    #[test]
    fn overwrites_return_latest() {
        let mut c = cluster(5, 1, 3);
        c.write(DataId(1), b"v1");
        c.write(DataId(1), b"v2");
        assert_eq!(c.read(DataId(1)).value.unwrap(), b"v2");
    }

    #[test]
    fn message_cost_is_masking_quorum() {
        let n = 9;
        let b = 2;
        let mut c = cluster(n, b, 4);
        c.write(DataId(1), b"v");
        let q = quorum::masking_quorum(n, b) as u64;
        assert_eq!(c.sim.stats().sent_by_kind("mask-write"), q);
        assert_eq!(c.sim.stats().sent_by_kind("mask-write-ack"), q);
        c.read(DataId(1));
        assert_eq!(c.sim.stats().sent_by_kind("mask-read"), q);
    }

    #[test]
    fn read_verifies_per_response() {
        let n = 9;
        let b = 2;
        let mut c = cluster(n, b, 5);
        c.write(DataId(1), b"v");
        let before = c.client_counters().verifies;
        c.read(DataId(1));
        let after = c.client_counters().verifies;
        // One verification per non-empty response in the quorum (paper §6:
        // "signature verifications proportional to the size of the
        // quorums").
        assert_eq!(after - before, quorum::masking_quorum(n, b) as u64);
    }

    #[test]
    fn unavailable_when_quorum_cannot_form() {
        let mut c = cluster(5, 1, 6);
        // 5 servers, quorum 4; crash 2 → unavailable.
        c.crash_server(0);
        c.crash_server(1);
        let r = c.write(DataId(1), b"v");
        assert!(!r.ok);
    }

    #[test]
    fn tolerates_b_crashes() {
        let mut c = cluster(5, 1, 7);
        c.crash_server(4); // not in the first quorum? rotation is 0..q — crash outside
        assert!(c.write(DataId(1), b"v").ok);
    }

    #[test]
    #[should_panic(expected = "4b+1")]
    fn rejects_too_few_servers() {
        cluster(4, 1, 8);
    }
}
