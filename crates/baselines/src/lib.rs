//! Baseline replication protocols the paper compares against (§3, §6).
//!
//! - [`masking`]: a Byzantine **masking-quorum** register in the style of
//!   Malkhi–Reiter / Phalanx: read and write quorums of `⌈(n+2b+1)/2⌉`
//!   servers, a read accepting a value vouched for by `b+1` servers.
//!   Provides safe-register semantics (strong consistency for a single
//!   writer) at the cost of larger quorums and per-response signature
//!   verification.
//! - [`pbft`]: **PBFT-lite**, the normal-case three-phase protocol of
//!   Castro–Liskov's Practical Byzantine Fault Tolerance: pre-prepare /
//!   prepare / commit with HMAC authenticators, `O(n²)` messages per
//!   operation, linearizable. View changes and checkpoints are out of
//!   scope — §6's comparison is about common-case message complexity, and
//!   a crashed primary is reported as unavailability.
//!
//! Both run on the same deterministic simulator as the secure store, with
//! the same message/crypto accounting, so the benchmark harness can put
//! all three systems side by side (experiment T4/F4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod masking;
pub mod pbft;

use sstore_simnet::SimTime;

/// Outcome of one baseline operation, with its latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineResult {
    /// Whether the operation completed.
    pub ok: bool,
    /// Value returned by reads.
    pub value: Option<Vec<u8>>,
    /// End-to-end latency.
    pub latency: SimTime,
}
